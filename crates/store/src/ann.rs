//! IVF-style approximate-nearest-neighbor index.
//!
//! A k-means coarse quantizer partitions the stored vectors into `nlist`
//! inverted lists. A query probes the `nprobe` lists whose centroids are
//! most aligned with it and re-ranks only those rows with the exact
//! cosine — so probing trades recall for speed, but never changes the
//! *score* of any row it returns.
//!
//! Everything here is deterministic: initialization is seeded (a
//! splitmix64 stream over `AnnConfig::seed`), ties break toward the
//! lower centroid index, and no wall-clock or thread-order dependence
//! exists anywhere, so the same vectors + config always build the same
//! index.

/// Configuration for [`IvfIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnConfig {
    /// Number of inverted lists (k-means centroids). `0` picks
    /// `ceil(sqrt(n))`, clamped to `[1, n]`.
    pub nlist: usize,
    /// Default number of lists a query probes (callers may override per
    /// probe call).
    pub nprobe: usize,
    /// k-means refinement iterations.
    pub iters: usize,
    /// Seed for deterministic centroid initialization.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            nlist: 0,
            nprobe: 8,
            iters: 8,
            seed: 0x534b_4554_4348_514c, // "SKETCHQL" in ASCII
        }
    }
}

/// An inverted-file index over a flat row-major vector column.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    dim: usize,
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
}

impl IvfIndex {
    /// Builds the index over `n = vectors.len() / dim` rows.
    ///
    /// # Panics
    /// If `dim == 0` while `vectors` is non-empty, or `vectors.len()` is
    /// not a multiple of `dim`.
    pub fn build(vectors: &[f32], dim: usize, cfg: &AnnConfig) -> Self {
        if vectors.is_empty() {
            return IvfIndex {
                dim,
                centroids: Vec::new(),
                lists: Vec::new(),
            };
        }
        assert!(dim > 0, "dim must be positive for non-empty vectors");
        assert_eq!(vectors.len() % dim, 0, "vectors not a multiple of dim");
        let n = vectors.len() / dim;
        let nlist = if cfg.nlist == 0 {
            (n as f64).sqrt().ceil() as usize
        } else {
            cfg.nlist
        }
        .clamp(1, n);

        // Unit-normalize rows once so assignment by dot product is
        // assignment by cosine.
        let mut unit = vectors.to_vec();
        for row in unit.chunks_mut(dim) {
            normalize(row);
        }

        let centroids = train_centroids(&unit, dim, nlist, cfg.iters, cfg.seed);

        // Final assignment into inverted lists.
        let mut lists = vec![Vec::new(); nlist];
        for (i, row) in unit.chunks(dim).enumerate() {
            lists[nearest(&centroids, dim, row).0].push(i as u32);
        }

        IvfIndex {
            dim,
            centroids,
            lists,
        }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The centroid table, row-major `nlist × dim`.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Row ids from the `nprobe` lists whose centroids are most aligned
    /// with `query` (descending alignment; ties toward the lower list
    /// index). Empty index → empty result.
    pub fn probe(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        if self.lists.is_empty() || nprobe == 0 {
            return Vec::new();
        }
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .chunks(self.dim)
            .enumerate()
            .map(|(c, cent)| (c, dot(cent, &q)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut out = Vec::new();
        for &(c, _) in ranked.iter().take(nprobe.min(ranked.len())) {
            out.extend_from_slice(&self.lists[c]);
        }
        out
    }

    /// [`IvfIndex::probe`] for many queries at once: one pass over the
    /// centroid table scores every query against each centroid (the
    /// centroid memory is streamed once instead of once per query),
    /// then each query ranks and gathers exactly as a solo probe would.
    /// Per-query results are bit-identical to [`IvfIndex::probe`] —
    /// same dot products, same comparator, same tie-breaks.
    pub fn probe_batch(&self, queries: &[&[f32]], nprobe: usize) -> Vec<Vec<u32>> {
        if self.lists.is_empty() || nprobe == 0 {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let unit: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| {
                let mut q = q.to_vec();
                normalize(&mut q);
                q
            })
            .collect();
        let mut ranked: Vec<Vec<(usize, f32)>> =
            vec![Vec::with_capacity(self.nlist()); queries.len()];
        for (c, cent) in self.centroids.chunks(self.dim).enumerate() {
            for (qi, q) in unit.iter().enumerate() {
                ranked[qi].push((c, dot(cent, q)));
            }
        }
        ranked
            .into_iter()
            .map(|mut ranked| {
                ranked.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let mut out = Vec::new();
                for &(c, _) in ranked.iter().take(nprobe.min(ranked.len())) {
                    out.extend_from_slice(&self.lists[c]);
                }
                out
            })
            .collect()
    }
}

/// The k-means refinement loop shared by [`IvfIndex::build`] and
/// [`CoarseQuantizer::train`]: seeded distinct-row initialization, then
/// `iters` rounds of assign + renormalized-mean update with deterministic
/// empty-cluster reseeding. `unit` must already be row-normalized.
/// Extracting this keeps the two callers bit-identical by construction.
fn train_centroids(unit: &[f32], dim: usize, nlist: usize, iters: usize, seed: u64) -> Vec<f32> {
    let n = unit.len() / dim;
    // Seeded distinct-row initialization.
    let mut rng = SplitMix64::new(seed);
    let mut chosen: Vec<usize> = Vec::with_capacity(nlist);
    while chosen.len() < nlist {
        let r = (rng.next() % n as u64) as usize;
        if !chosen.contains(&r) {
            chosen.push(r);
        }
    }
    let mut centroids = Vec::with_capacity(nlist * dim);
    for &r in &chosen {
        centroids.extend_from_slice(&unit[r * dim..(r + 1) * dim]);
    }

    let mut assign = vec![0usize; n];
    for _ in 0..iters.max(1) {
        // Assign each row to its most-aligned centroid.
        for (i, row) in unit.chunks(dim).enumerate() {
            assign[i] = nearest(&centroids, dim, row).0;
        }
        // Recompute centroids as renormalized means.
        let mut sums = vec![0.0f32; nlist * dim];
        let mut counts = vec![0usize; nlist];
        for (i, row) in unit.chunks(dim).enumerate() {
            let c = assign[i];
            counts[c] += 1;
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..nlist {
            if counts[c] == 0 {
                // Reseed an empty cluster with the row least aligned
                // to its current centroid (the worst-represented
                // vector), deterministically.
                let mut worst = (0usize, f32::INFINITY);
                for (i, row) in unit.chunks(dim).enumerate() {
                    let a = assign[i];
                    let d = dot(&centroids[a * dim..(a + 1) * dim], row);
                    if d < worst.1 {
                        worst = (i, d);
                    }
                }
                centroids[c * dim..(c + 1) * dim]
                    .copy_from_slice(&unit[worst.0 * dim..(worst.0 + 1) * dim]);
                continue;
            }
            let inv = 1.0 / counts[c] as f32;
            for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(&sums[c * dim..(c + 1) * dim])
            {
                *dst = s * inv;
            }
            normalize(&mut centroids[c * dim..(c + 1) * dim]);
        }
    }
    centroids
}

/// The shared coarse quantizer of a *sharded* store: the same k-means
/// centroids an [`IvfIndex`] would train, without per-row inverted
/// lists — those live inside each shard, expressed against this one
/// centroid table. Training once over a sample of the whole dataset
/// (rather than per shard) is what lets a query rank centroids a single
/// time and fan out to shards, and what makes per-shard posting lists
/// comparable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseQuantizer {
    dim: usize,
    centroids: Vec<f32>,
}

impl CoarseQuantizer {
    /// Trains centroids over `vectors` (row-major, `len / dim` rows)
    /// with exactly [`IvfIndex::build`]'s k-means: same normalization,
    /// same seeded initialization, same refinement and reseeding.
    ///
    /// # Panics
    /// If `dim == 0` while `vectors` is non-empty, or `vectors.len()` is
    /// not a multiple of `dim`.
    pub fn train(vectors: &[f32], dim: usize, cfg: &AnnConfig) -> Self {
        if vectors.is_empty() {
            return CoarseQuantizer {
                dim,
                centroids: Vec::new(),
            };
        }
        assert!(dim > 0, "dim must be positive for non-empty vectors");
        assert_eq!(vectors.len() % dim, 0, "vectors not a multiple of dim");
        let n = vectors.len() / dim;
        let nlist = if cfg.nlist == 0 {
            (n as f64).sqrt().ceil() as usize
        } else {
            cfg.nlist
        }
        .clamp(1, n);
        let mut unit = vectors.to_vec();
        for row in unit.chunks_mut(dim) {
            normalize(row);
        }
        CoarseQuantizer {
            dim,
            centroids: train_centroids(&unit, dim, nlist, cfg.iters, cfg.seed),
        }
    }

    /// Rebuilds a quantizer from persisted centroids (the manifest
    /// stores them by bit pattern, so this is bit-identical to the
    /// trained original).
    ///
    /// # Panics
    /// If `centroids.len()` is not a multiple of `dim` (for non-empty
    /// tables).
    pub fn from_centroids(centroids: Vec<f32>, dim: usize) -> Self {
        if !centroids.is_empty() {
            assert!(dim > 0, "dim must be positive for non-empty centroids");
            assert_eq!(centroids.len() % dim, 0, "centroids not a multiple of dim");
        }
        CoarseQuantizer { dim, centroids }
    }

    /// Number of centroids.
    pub fn nlist(&self) -> usize {
        self.centroids.len().checked_div(self.dim).unwrap_or(0)
    }

    /// The centroid table, row-major `nlist × dim`.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The centroid a data row belongs to — the assignment
    /// [`IvfIndex::build`] would make for the same row against the same
    /// centroids. `0` for an empty quantizer.
    pub fn assign(&self, row: &[f32]) -> usize {
        if self.centroids.is_empty() {
            return 0;
        }
        let mut r = row.to_vec();
        normalize(&mut r);
        nearest(&self.centroids, self.dim, &r).0
    }

    /// Every centroid index ranked by alignment with `query`
    /// (descending; ties toward the lower index) — the exact ranking
    /// [`IvfIndex::probe`] applies before gathering lists. Callers take
    /// the first `nprobe`.
    pub fn rank(&self, query: &[f32]) -> Vec<usize> {
        if self.centroids.is_empty() {
            return Vec::new();
        }
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .chunks(self.dim)
            .enumerate()
            .map(|(c, cent)| (c, dot(cent, &q)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.into_iter().map(|(c, _)| c).collect()
    }

    /// [`CoarseQuantizer::rank`] for many queries at once: one pass over
    /// the centroid table scores every query per centroid, then each
    /// query sorts exactly as a solo rank would. Per-query results are
    /// bit-identical to [`CoarseQuantizer::rank`].
    pub fn rank_batch(&self, queries: &[&[f32]]) -> Vec<Vec<usize>> {
        if self.centroids.is_empty() {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let unit: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| {
                let mut q = q.to_vec();
                normalize(&mut q);
                q
            })
            .collect();
        let mut ranked: Vec<Vec<(usize, f32)>> =
            vec![Vec::with_capacity(self.nlist()); queries.len()];
        for (c, cent) in self.centroids.chunks(self.dim).enumerate() {
            for (qi, q) in unit.iter().enumerate() {
                ranked[qi].push((c, dot(cent, q)));
            }
        }
        ranked
            .into_iter()
            .map(|mut ranked| {
                ranked.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                ranked.into_iter().map(|(c, _)| c).collect()
            })
            .collect()
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 && norm.is_finite() {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Index (and alignment) of the centroid most aligned with `row`; ties
/// break toward the lower index.
fn nearest(centroids: &[f32], dim: usize, row: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (c, cent) in centroids.chunks(dim).enumerate() {
        let d = dot(cent, row);
        if d > best.1 {
            best = (c, d);
        }
    }
    best
}

/// splitmix64 — tiny, seedable, good-enough stream for centroid picks.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vectors() -> (Vec<f32>, usize) {
        // Three well-separated directions in 2D, several points each.
        let dirs: [(f32, f32); 3] = [(1.0, 0.0), (0.0, 1.0), (-1.0, -1.0)];
        let mut v = Vec::new();
        for &(x, y) in &dirs {
            for k in 0..5 {
                let jitter = 0.01 * k as f32;
                v.push(x + jitter);
                v.push(y - jitter);
            }
        }
        (v, 2)
    }

    #[test]
    fn build_is_deterministic() {
        let (v, dim) = toy_vectors();
        let cfg = AnnConfig {
            nlist: 3,
            ..AnnConfig::default()
        };
        let a = IvfIndex::build(&v, dim, &cfg);
        let b = IvfIndex::build(&v, dim, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn every_row_lands_in_exactly_one_list() {
        let (v, dim) = toy_vectors();
        let idx = IvfIndex::build(&v, dim, &AnnConfig::default());
        let mut seen: Vec<u32> = idx.lists.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..15u32).collect::<Vec<_>>());
    }

    #[test]
    fn probing_all_lists_returns_every_row() {
        let (v, dim) = toy_vectors();
        let idx = IvfIndex::build(&v, dim, &AnnConfig::default());
        let mut got = idx.probe(&[0.5, 0.5], idx.nlist());
        got.sort_unstable();
        assert_eq!(got, (0..15u32).collect::<Vec<_>>());
    }

    #[test]
    fn probe_prefers_the_aligned_cluster() {
        let (v, dim) = toy_vectors();
        let idx = IvfIndex::build(
            &v,
            dim,
            &AnnConfig {
                nlist: 3,
                ..AnnConfig::default()
            },
        );
        // Probing one list with a query right on the +x direction must
        // return the +x cluster (rows 0..5).
        let got = idx.probe(&[1.0, 0.0], 1);
        assert!(!got.is_empty());
        assert!(got.iter().all(|&r| r < 5), "got {got:?}");
    }

    #[test]
    fn empty_store_builds_an_empty_index() {
        let idx = IvfIndex::build(&[], 0, &AnnConfig::default());
        assert_eq!(idx.nlist(), 0);
        assert!(idx.probe(&[1.0], 4).is_empty());
    }

    #[test]
    fn probe_batch_matches_solo_probes_bit_for_bit() {
        let (v, dim) = toy_vectors();
        let idx = IvfIndex::build(
            &v,
            dim,
            &AnnConfig {
                nlist: 3,
                ..AnnConfig::default()
            },
        );
        let queries: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-0.7, -0.7],
            vec![0.3, 0.2],
            vec![0.0, 0.0], // degenerate: normalization no-ops
        ];
        for nprobe in 0..=idx.nlist() + 1 {
            let refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
            let batched = idx.probe_batch(&refs, nprobe);
            for (q, got) in queries.iter().zip(&batched) {
                assert_eq!(got, &idx.probe(q, nprobe), "nprobe={nprobe}");
            }
        }
    }

    #[test]
    fn probe_batch_on_empty_index_returns_per_query_empties() {
        let idx = IvfIndex::build(&[], 0, &AnnConfig::default());
        let q: Vec<f32> = vec![1.0];
        assert_eq!(idx.probe_batch(&[&q, &q], 4), vec![vec![], vec![]]);
    }

    #[test]
    fn quantizer_trains_the_exact_ivf_centroids() {
        // Same vectors + config must give the same centroid bits whether
        // trained through IvfIndex::build or CoarseQuantizer::train.
        let (v, dim) = toy_vectors();
        let cfg = AnnConfig {
            nlist: 3,
            ..AnnConfig::default()
        };
        let idx = IvfIndex::build(&v, dim, &cfg);
        let q = CoarseQuantizer::train(&v, dim, &cfg);
        let a: Vec<u32> = idx.centroids().iter().map(|c| c.to_bits()).collect();
        let b: Vec<u32> = q.centroids().iter().map(|c| c.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn quantizer_assignment_reproduces_ivf_lists() {
        let (v, dim) = toy_vectors();
        let cfg = AnnConfig {
            nlist: 3,
            ..AnnConfig::default()
        };
        let idx = IvfIndex::build(&v, dim, &cfg);
        let q = CoarseQuantizer::from_centroids(idx.centroids().to_vec(), dim);
        let mut lists = vec![Vec::new(); q.nlist()];
        for (i, row) in v.chunks(dim).enumerate() {
            lists[q.assign(row)].push(i as u32);
        }
        for (c, list) in lists.iter().enumerate() {
            assert_eq!(*list, idx.lists[c], "list {c}");
        }
    }

    #[test]
    fn quantizer_rank_orders_exactly_like_probe() {
        // probe(nprobe) must gather lists in rank() order: truncating the
        // rank at any nprobe and concatenating the IVF lists reproduces
        // probe's output for that nprobe.
        let (v, dim) = toy_vectors();
        let cfg = AnnConfig {
            nlist: 3,
            ..AnnConfig::default()
        };
        let idx = IvfIndex::build(&v, dim, &cfg);
        let q = CoarseQuantizer::from_centroids(idx.centroids().to_vec(), dim);
        for query in [[1.0f32, 0.0], [0.0, 1.0], [-0.6, -0.6], [0.0, 0.0]] {
            let ranked = q.rank(&query);
            assert_eq!(ranked.len(), 3);
            for nprobe in 1..=3usize {
                let mut gathered = Vec::new();
                for &c in ranked.iter().take(nprobe) {
                    gathered.extend_from_slice(&idx.lists[c]);
                }
                assert_eq!(gathered, idx.probe(&query, nprobe), "nprobe={nprobe}");
            }
        }
    }

    #[test]
    fn quantizer_rank_batch_matches_solo_ranks() {
        let (v, dim) = toy_vectors();
        let q = CoarseQuantizer::train(
            &v,
            dim,
            &AnnConfig {
                nlist: 3,
                ..AnnConfig::default()
            },
        );
        let queries: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.0, -1.0],
            vec![0.4, 0.4],
            vec![0.0, 0.0],
        ];
        let refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let batched = q.rank_batch(&refs);
        for (query, got) in queries.iter().zip(&batched) {
            assert_eq!(got, &q.rank(query));
        }
    }

    #[test]
    fn empty_quantizer_is_inert() {
        let q = CoarseQuantizer::train(&[], 0, &AnnConfig::default());
        assert_eq!(q.nlist(), 0);
        assert!(q.rank(&[1.0]).is_empty());
        assert_eq!(q.assign(&[1.0]), 0);
        let one: Vec<f32> = vec![1.0];
        assert_eq!(q.rank_batch(&[&one]), vec![Vec::<usize>::new()]);
    }
}
