//! Property-based tests for motion integration and camera projection.

use proptest::prelude::*;
use sketchql_simulator::{Agent, AgentPose, Camera, MotionPrimitive, MotionScript};
use sketchql_trajectory::{wrap_angle, ObjectClass, Point2, Point3};

fn arb_primitive() -> impl Strategy<Value = MotionPrimitive> {
    prop_oneof![
        (5u32..60, 0.2f32..1.5)
            .prop_map(|(frames, speed)| MotionPrimitive::Straight { frames, speed }),
        (5u32..60, -2.5f32..2.5, 0.2f32..1.2).prop_map(|(frames, angle, speed)| {
            MotionPrimitive::Turn {
                frames,
                angle,
                speed,
            }
        }),
        (5u32..40).prop_map(|frames| MotionPrimitive::Stop { frames }),
        (5u32..40, 0.0f32..0.5, 0.5f32..1.5)
            .prop_map(|(frames, from, to)| MotionPrimitive::Accelerate { frames, from, to }),
        (6u32..40, 0.1f32..1.0, 0.3f32..1.2).prop_map(|(frames, angle, speed)| {
            MotionPrimitive::SCurve {
                frames,
                angle,
                speed,
            }
        }),
    ]
}

fn arb_script() -> impl Strategy<Value = MotionScript> {
    (
        -30.0f32..30.0,
        -30.0f32..30.0,
        -3.0f32..3.0,
        0.5f32..12.0,
        prop::collection::vec(arb_primitive(), 1..5),
        0u32..20,
    )
        .prop_map(|(x, y, heading, speed, prims, delay)| {
            let mut s = MotionScript::new(Point2::new(x, y), heading, speed).starting_at(delay);
            for p in prims {
                s = s.then(p);
            }
            s
        })
}

proptest! {
    #[test]
    fn integration_has_exact_length(script in arb_script()) {
        let poses = script.integrate(30.0);
        prop_assert_eq!(poses.len() as u32, script.total_frames());
    }

    #[test]
    fn poses_are_finite_and_speeds_nonnegative(script in arb_script()) {
        for p in script.integrate(30.0) {
            prop_assert!(p.position.x.is_finite() && p.position.y.is_finite());
            prop_assert!(p.heading.is_finite());
            prop_assert!(p.speed >= 0.0);
        }
    }

    #[test]
    fn per_frame_displacement_matches_speed(script in arb_script()) {
        let poses = script.integrate(30.0);
        for w in poses.windows(2) {
            let d = w[0].position.distance(&w[1].position);
            prop_assert!((d - w[1].speed).abs() < 1e-3, "step {d} vs speed {}", w[1].speed);
        }
    }

    #[test]
    fn pure_turn_accumulates_requested_angle(
        angle in -3.0f32..3.0,
        frames in 5u32..80,
        heading in -3.0f32..3.0,
    ) {
        let s = MotionScript::new(Point2::ZERO, heading, 5.0)
            .then(MotionPrimitive::Turn { frames, angle, speed: 1.0 });
        let poses = s.integrate(30.0);
        let net = wrap_angle(poses.last().unwrap().heading - heading);
        prop_assert!((net - wrap_angle(angle)).abs() < 1e-3, "net {net} vs {angle}");
    }

    #[test]
    fn camera_projection_is_scale_consistent(
        px in -40.0f32..40.0,
        py in -40.0f32..40.0,
        pz in 0.0f32..5.0,
        t in 1.5f32..10.0,
    ) {
        // Points along the same camera ray project to the same pixel.
        let cam = Camera::look_at(Point3::new(0.0, -60.0, 30.0), Point3::ZERO);
        let p = Point3::new(px, py, pz);
        if let Some(a) = cam.project(&p) {
            let dir = p - cam.eye;
            let q = cam.eye + dir * t;
            if let Some(b) = cam.project(&q) {
                prop_assert!(a.distance(&b) < 0.2, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn projected_bbox_is_within_frame(
        px in -80.0f32..80.0,
        py in -80.0f32..80.0,
        heading in -3.0f32..3.0,
    ) {
        let cam = Camera::look_at(Point3::new(0.0, -50.0, 25.0), Point3::ZERO);
        let agent = Agent::with_priors(ObjectClass::Car);
        let pose = AgentPose { position: Point2::new(px, py), heading, speed: 0.0 };
        if let Some(b) = cam.project_bbox(&agent.corners(&pose)) {
            prop_assert!(b.x1() >= -1e-3 && b.x2() <= cam.image_width + 1e-3);
            prop_assert!(b.y1() >= -1e-3 && b.y2() <= cam.image_height + 1e-3);
            prop_assert!(b.is_valid());
        }
    }

    #[test]
    fn closer_agents_never_project_smaller_along_view_axis(
        d1 in 10.0f32..30.0,
        d2 in 35.0f32..90.0,
    ) {
        // Camera at origin side looking along +y; same agent at two depths.
        let cam = Camera::look_at(Point3::new(0.0, -5.0, 8.0), Point3::new(0.0, 50.0, 0.0));
        let agent = Agent::with_priors(ObjectClass::Car);
        let near = cam.project_bbox(&agent.corners(&AgentPose {
            position: Point2::new(0.0, d1),
            heading: 0.0,
            speed: 0.0,
        }));
        let far = cam.project_bbox(&agent.corners(&AgentPose {
            position: Point2::new(0.0, d2),
            heading: 0.0,
            speed: 0.0,
        }));
        if let (Some(n), Some(f)) = (near, far) {
            prop_assert!(n.area() >= f.area() * 0.9, "near {} vs far {}", n.area(), f.area());
        }
    }
}
