//! Classical trajectory distance measures.
//!
//! These serve as the Matcher's baseline similarity functions in the
//! experiments: the paper's claim is that a *learned* similarity (the
//! transformer encoder trained on simulator data) is more robust to camera
//! perspective, scale, and tracking noise than hand-crafted distances. To
//! test that claim we need faithful implementations of the hand-crafted
//! distances themselves.
//!
//! All functions operate on center paths (sequences of [`Point2`]) and are
//! lifted to multi-object [`Clip`]s by [`clip_distance`], which averages the
//! per-object distances after canonical normalization.

use crate::clip::Clip;
use crate::geom::Point2;

/// Which classical measure to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Mean point-wise Euclidean distance between equal-length paths.
    Euclidean,
    /// Dynamic time warping with Euclidean ground distance (path-length
    /// normalized).
    Dtw,
    /// Discrete Fréchet distance.
    Frechet,
    /// Symmetric Hausdorff distance (order-insensitive).
    Hausdorff,
    /// Mean Euclidean over positions *and* velocity deltas; velocity makes
    /// the measure sensitive to motion direction, not just shape.
    EuclideanVelocity,
    /// Longest-common-subsequence distance (1 - normalized LCSS match
    /// count with spatial threshold [`LCSS_EPSILON`]).
    Lcss,
    /// Edit distance with real penalty (gap cost = distance to the
    /// origin-of-normalized-space reference point), length-normalized.
    Erp,
}

impl DistanceKind {
    /// All baseline kinds, for experiment sweeps.
    pub const ALL: &'static [DistanceKind] = &[
        DistanceKind::Euclidean,
        DistanceKind::Dtw,
        DistanceKind::Frechet,
        DistanceKind::Hausdorff,
        DistanceKind::EuclideanVelocity,
        DistanceKind::Lcss,
        DistanceKind::Erp,
    ];

    /// Short machine-readable name, used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Dtw => "dtw",
            DistanceKind::Frechet => "frechet",
            DistanceKind::Hausdorff => "hausdorff",
            DistanceKind::EuclideanVelocity => "euclid+vel",
            DistanceKind::Lcss => "lcss",
            DistanceKind::Erp => "erp",
        }
    }
}

/// Mean point-wise Euclidean distance. Paths must have equal length; the
/// caller resamples first. Empty paths are infinitely far apart unless both
/// are empty (distance 0).
pub fn euclidean(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.len() != b.len() || a.is_empty() {
        return f32::INFINITY;
    }
    let sum: f32 = a.iter().zip(b).map(|(p, q)| p.distance(q)).sum();
    sum / a.len() as f32
}

/// Dynamic time warping distance with Euclidean ground cost, normalized by
/// the warping path length so values are comparable across lengths.
///
/// O(|a|·|b|) time, O(|b|) space (two rolling rows).
pub fn dtw(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let m = b.len();
    // cost[i][j] = dtw cost; steps[i][j] = length of optimal warping path.
    let mut prev = vec![(f32::INFINITY, 0u32); m + 1];
    let mut curr = vec![(f32::INFINITY, 0u32); m + 1];
    prev[0] = (0.0, 0);
    for pa in a {
        curr[0] = (f32::INFINITY, 0);
        for (j, pb) in b.iter().enumerate() {
            let d = pa.distance(pb);
            // Choose the predecessor with smallest accumulated cost.
            let diag = prev[j];
            let up = prev[j + 1];
            let left = curr[j];
            let best = if diag.0 <= up.0 && diag.0 <= left.0 {
                diag
            } else if up.0 <= left.0 {
                up
            } else {
                left
            };
            curr[j + 1] = (best.0 + d, best.1 + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let (cost, steps) = prev[m];
    if steps == 0 {
        f32::INFINITY
    } else {
        cost / steps as f32
    }
}

/// Discrete Fréchet distance (the "dog leash" distance for polylines),
/// computed with the standard dynamic program. O(|a|·|b|) time and space.
pub fn frechet(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    let mut ca = vec![f32::INFINITY; n * m];
    for i in 0..n {
        for j in 0..m {
            let d = a[i].distance(&b[j]);
            let v = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                ca[j - 1].max(d)
            } else if j == 0 {
                ca[(i - 1) * m].max(d)
            } else {
                let pred = ca[(i - 1) * m + j]
                    .min(ca[(i - 1) * m + j - 1])
                    .min(ca[i * m + j - 1]);
                pred.max(d)
            };
            ca[i * m + j] = v;
        }
    }
    ca[n * m - 1]
}

/// Symmetric Hausdorff distance: max over directed Hausdorff in both
/// directions. Order-insensitive — it sees paths as point sets, which is
/// exactly why it makes a weak motion-similarity baseline.
pub fn hausdorff(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

fn directed_hausdorff(a: &[Point2], b: &[Point2]) -> f32 {
    a.iter()
        .map(|p| {
            b.iter()
                .map(|q| p.distance_sq(q))
                .fold(f32::INFINITY, f32::min)
        })
        .fold(0.0f32, f32::max)
        .sqrt()
}

/// Mean Euclidean over positions and first-difference (velocity) vectors.
/// Velocity terms are weighted by `VEL_WEIGHT` relative to positions.
pub fn euclidean_velocity(a: &[Point2], b: &[Point2]) -> f32 {
    const VEL_WEIGHT: f32 = 4.0;
    let pos = euclidean(a, b);
    if !pos.is_finite() {
        return pos;
    }
    if a.len() < 2 {
        return pos;
    }
    let va: Vec<Point2> = a.windows(2).map(|w| w[1] - w[0]).collect();
    let vb: Vec<Point2> = b.windows(2).map(|w| w[1] - w[0]).collect();
    pos + VEL_WEIGHT * euclidean(&va, &vb)
}

/// Spatial match threshold of [`lcss`], in the canonical unit-square scale.
pub const LCSS_EPSILON: f32 = 0.08;

/// Longest-common-subsequence distance: `1 - LCSS / min(|a|, |b|)` where a
/// pair of points matches when within [`LCSS_EPSILON`]. Robust to outliers
/// (unmatched points simply don't count), weak on ordering granularity.
pub fn lcss(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let m = b.len();
    let mut prev = vec![0u32; m + 1];
    let mut curr = vec![0u32; m + 1];
    for pa in a {
        for (j, pb) in b.iter().enumerate() {
            curr[j + 1] = if pa.distance(pb) <= LCSS_EPSILON {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
        curr[0] = 0;
    }
    let lcs = prev[m] as f32;
    1.0 - lcs / a.len().min(b.len()) as f32
}

/// Edit distance with real penalty (Chen & Ng, VLDB'04): a metric edit
/// distance where gaps cost the distance to a fixed reference point `g`
/// (the canonical clip center). Normalized by `|a| + |b|`.
pub fn erp(a: &[Point2], b: &[Point2]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let g = Point2::new(0.5, 0.5);
    let m = b.len();
    let mut prev: Vec<f32> = Vec::with_capacity(m + 1);
    prev.push(0.0);
    for pb in b {
        prev.push(prev.last().unwrap() + pb.distance(&g));
    }
    let mut curr = vec![0.0f32; m + 1];
    for pa in a {
        curr[0] = prev[0] + pa.distance(&g);
        for (j, pb) in b.iter().enumerate() {
            let subst = prev[j] + pa.distance(pb);
            let del_a = prev[j + 1] + pa.distance(&g);
            let del_b = curr[j] + pb.distance(&g);
            curr[j + 1] = subst.min(del_a).min(del_b);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m] / (a.len() + b.len()) as f32
}

/// Applies one classical measure to a pair of paths.
pub fn path_distance(kind: DistanceKind, a: &[Point2], b: &[Point2]) -> f32 {
    match kind {
        DistanceKind::Euclidean => euclidean(a, b),
        DistanceKind::Dtw => dtw(a, b),
        DistanceKind::Frechet => frechet(a, b),
        DistanceKind::Hausdorff => hausdorff(a, b),
        DistanceKind::EuclideanVelocity => euclidean_velocity(a, b),
        DistanceKind::Lcss => lcss(a, b),
        DistanceKind::Erp => erp(a, b),
    }
}

/// Number of resample steps used when lifting path distances to clips.
pub const CLIP_RESAMPLE_STEPS: usize = 32;

/// Lifts a path distance to multi-object clips.
///
/// Both clips are canonicalized (normalized + resampled to a shared fixed
/// length) and the per-object distances between corresponding objects are
/// averaged. Clips with different object counts are infinitely far apart —
/// candidate generation guarantees matching arity.
pub fn clip_distance(kind: DistanceKind, q: &Clip, v: &Clip) -> f32 {
    if q.num_objects() != v.num_objects() {
        return f32::INFINITY;
    }
    if q.num_objects() == 0 {
        return 0.0;
    }
    let qc = q.canonical(CLIP_RESAMPLE_STEPS);
    let vc = v.canonical(CLIP_RESAMPLE_STEPS);
    let mut sum = 0.0;
    for (tq, tv) in qc.objects.iter().zip(&vc.objects) {
        sum += path_distance(kind, &tq.centers(), &tv.centers());
    }
    sum / q.num_objects() as f32
}

/// Converts a distance to a similarity in `(0, 1]` via `1 / (1 + d)`.
/// Monotone, so rankings by similarity equal rankings by distance.
pub fn distance_to_similarity(d: f32) -> f32 {
    if !d.is_finite() {
        0.0
    } else {
        1.0 / (1.0 + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(coords: &[(f32, f32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn euclidean_identical_is_zero() {
        let a = path(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn euclidean_constant_offset() {
        let a = path(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = path(&[(0.0, 3.0), (1.0, 3.0)]);
        assert!((euclidean(&a, &b) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn euclidean_length_mismatch_is_infinite() {
        let a = path(&[(0.0, 0.0)]);
        let b = path(&[(0.0, 0.0), (1.0, 0.0)]);
        assert!(euclidean(&a, &b).is_infinite());
    }

    #[test]
    fn dtw_identical_is_zero() {
        let a = path(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]);
        assert!(dtw(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn dtw_absorbs_time_stretch() {
        // Same shape, one path sampled twice as densely: DTW should be tiny
        // while plain Euclidean is undefined (length mismatch).
        let a: Vec<Point2> = (0..10).map(|i| Point2::new(i as f32, 0.0)).collect();
        let b: Vec<Point2> = (0..20).map(|i| Point2::new(i as f32 * 0.5, 0.0)).collect();
        let d = dtw(&a, &b);
        assert!(d < 0.3, "dtw should absorb resampling, got {d}");
        assert!(euclidean(&a, &b).is_infinite());
    }

    #[test]
    fn dtw_separates_different_shapes() {
        let line: Vec<Point2> = (0..16).map(|i| Point2::new(i as f32 / 15.0, 0.0)).collect();
        let turn: Vec<Point2> = (0..16)
            .map(|i| {
                let t = i as f32 / 15.0;
                // quarter-circle turn
                let th = t * std::f32::consts::FRAC_PI_2;
                Point2::new(th.sin(), 1.0 - th.cos())
            })
            .collect();
        let d_same = dtw(&line, &line);
        let d_diff = dtw(&line, &turn);
        assert!(d_diff > d_same + 0.1);
    }

    #[test]
    fn frechet_identical_is_zero() {
        let a = path(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0)]);
        assert!(frechet(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn frechet_is_max_leash_length() {
        // Two parallel horizontal lines distance 2 apart: Fréchet = 2.
        let a = path(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = path(&[(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)]);
        assert!((frechet(&a, &b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn frechet_at_least_hausdorff() {
        // Classical property: Fréchet >= Hausdorff for the same curves.
        let a = path(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, -1.0)]);
        let b = path(&[(0.0, 0.5), (1.5, 0.0), (3.0, 0.5)]);
        assert!(frechet(&a, &b) + 1e-6 >= hausdorff(&a, &b));
    }

    #[test]
    fn hausdorff_is_order_insensitive() {
        let a = path(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let rev: Vec<Point2> = a.iter().rev().copied().collect();
        assert!(hausdorff(&a, &rev).abs() < 1e-6);
        // ...whereas DTW/Fréchet are direction sensitive:
        assert!(dtw(&a, &rev) > 0.5);
    }

    #[test]
    fn euclidean_velocity_separates_direction() {
        // Same positions visited, opposite directions.
        let a = path(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let rev: Vec<Point2> = a.iter().rev().copied().collect();
        let d = euclidean_velocity(&a, &rev);
        assert!(d > euclidean(&a, &rev));
    }

    #[test]
    fn lcss_identical_is_zero_and_outlier_robust() {
        let a: Vec<Point2> = (0..20).map(|i| Point2::new(i as f32 * 0.05, 0.3)).collect();
        assert!(lcss(&a, &a).abs() < 1e-6);
        // One wild outlier barely changes LCSS (unlike Euclidean/DTW).
        let mut b = a.clone();
        b[10] = Point2::new(100.0, 100.0);
        assert!(lcss(&a, &b) <= 0.06, "lcss {}", lcss(&a, &b));
        assert!(dtw(&a, &b) > 1.0, "dtw should blow up on the outlier");
    }

    #[test]
    fn lcss_distant_paths_are_far() {
        let a: Vec<Point2> = (0..10).map(|i| Point2::new(i as f32 * 0.1, 0.0)).collect();
        let b: Vec<Point2> = (0..10).map(|i| Point2::new(i as f32 * 0.1, 5.0)).collect();
        assert!((lcss(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erp_identity_and_triangle_inequality() {
        let a = path(&[(0.1, 0.2), (0.4, 0.5), (0.8, 0.4)]);
        let b = path(&[(0.2, 0.2), (0.5, 0.6)]);
        let c = path(&[(0.9, 0.9), (0.1, 0.8), (0.3, 0.3), (0.6, 0.1)]);
        assert!(erp(&a, &a).abs() < 1e-6);
        // ERP (unnormalized) is a metric; with our length normalization the
        // triangle inequality holds up to the normalization factors — check
        // the raw form by scaling back.
        let raw = |x: &[Point2], y: &[Point2]| erp(x, y) * (x.len() + y.len()) as f32;
        assert!(raw(&a, &c) <= raw(&a, &b) + raw(&b, &c) + 1e-4);
    }

    #[test]
    fn erp_accepts_unequal_lengths() {
        let a: Vec<Point2> = (0..10).map(|i| Point2::new(i as f32 * 0.1, 0.2)).collect();
        let b: Vec<Point2> = (0..20).map(|i| Point2::new(i as f32 * 0.05, 0.2)).collect();
        let d = erp(&a, &b);
        assert!(d.is_finite());
        // Same shape resampled differently: gaps are cheap along the path.
        assert!(d < 0.2, "erp {d}");
    }

    #[test]
    fn all_kinds_zero_on_self_and_symmetric() {
        let a = path(&[(0.0, 0.0), (0.5, 0.2), (1.0, 0.9), (1.5, 1.0)]);
        let b = path(&[(0.1, 0.0), (0.4, 0.5), (1.2, 0.7), (1.4, 1.2)]);
        for &k in DistanceKind::ALL {
            let daa = path_distance(k, &a, &a);
            assert!(daa.abs() < 1e-5, "{k:?} self-distance {daa}");
            let dab = path_distance(k, &a, &b);
            let dba = path_distance(k, &b, &a);
            assert!((dab - dba).abs() < 1e-4, "{k:?} asymmetric: {dab} vs {dba}");
        }
    }

    #[test]
    fn empty_paths() {
        let e: Vec<Point2> = vec![];
        let a = path(&[(0.0, 0.0)]);
        for &k in DistanceKind::ALL {
            assert_eq!(path_distance(k, &e, &e), 0.0);
            assert!(path_distance(k, &e, &a).is_infinite(), "{k:?}");
        }
    }

    #[test]
    fn clip_distance_arity_mismatch_is_infinite() {
        use crate::bbox::BBox;
        use crate::object::ObjectClass;
        use crate::trajectory::{TrajPoint, Trajectory};
        let t = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..5)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32, 0.0, 2.0, 2.0)))
                .collect(),
        );
        let one = Clip::new(100.0, 100.0, vec![t.clone()]);
        let two = Clip::new(100.0, 100.0, vec![t.clone(), t]);
        assert!(clip_distance(DistanceKind::Dtw, &one, &two).is_infinite());
    }

    #[test]
    fn clip_distance_translation_invariant_after_normalization() {
        use crate::bbox::BBox;
        use crate::object::ObjectClass;
        use crate::trajectory::{TrajPoint, Trajectory};
        let make = |off: f32| {
            let t = Trajectory::from_points(
                1,
                ObjectClass::Car,
                (0..12)
                    .map(|f| TrajPoint::new(f, BBox::new(off + f as f32 * 3.0, off, 4.0, 4.0)))
                    .collect(),
            );
            Clip::new(500.0, 500.0, vec![t])
        };
        let a = make(0.0);
        let b = make(200.0);
        let d = clip_distance(DistanceKind::Euclidean, &a, &b);
        assert!(d < 1e-4, "normalization should remove translation, got {d}");
    }

    #[test]
    fn similarity_mapping_monotone() {
        assert!(distance_to_similarity(0.0) > distance_to_similarity(1.0));
        assert_eq!(distance_to_similarity(f32::INFINITY), 0.0);
        assert_eq!(distance_to_similarity(0.0), 1.0);
    }
}
