//! Property-based tests for the trajectory substrate's core invariants.

use proptest::prelude::*;
use sketchql_trajectory::distance::{self, DistanceKind};
use sketchql_trajectory::{BBox, Clip, ObjectClass, Point2, TrajPoint, Trajectory};

fn arb_point() -> impl Strategy<Value = Point2> {
    (-100.0f32..100.0, -100.0f32..100.0).prop_map(|(x, y)| Point2::new(x, y))
}

fn arb_path(max_len: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(arb_point(), 1..max_len)
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (-50.0f32..50.0, -50.0f32..50.0, 0.5f32..20.0, 0.5f32..20.0)
        .prop_map(|(cx, cy, w, h)| BBox::new(cx, cy, w, h))
}

fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec(arb_bbox(), 2..40).prop_map(|boxes| {
        let pts = boxes
            .into_iter()
            .enumerate()
            .map(|(i, b)| TrajPoint::new(i as u32 * 2, b))
            .collect();
        Trajectory::from_points(7, ObjectClass::Car, pts)
    })
}

proptest! {
    #[test]
    fn iou_in_unit_interval(a in arb_bbox(), b in arb_bbox()) {
        let v = a.iou(&b);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-6);
    }

    #[test]
    fn iou_self_is_one(a in arb_bbox()) {
        // f32 edge subtraction loses ~1e-5 relative precision for small
        // boxes centered far from the origin.
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn union_bounds_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union_bounds(&b);
        prop_assert!(u.x1() <= a.x1() + 1e-4 && u.x2() >= a.x2() - 1e-4);
        prop_assert!(u.y1() <= b.y1() + 1e-4 && u.y2() >= b.y2() - 1e-4);
        prop_assert!(u.area() + 1e-4 >= a.area().max(b.area()));
    }

    #[test]
    fn distances_nonnegative_and_symmetric(a in arb_path(24), b in arb_path(24)) {
        for &k in DistanceKind::ALL {
            // Euclidean variants require equal lengths; skip mismatches.
            if matches!(k, DistanceKind::Euclidean | DistanceKind::EuclideanVelocity)
                && a.len() != b.len()
            {
                continue;
            }
            let d = distance::path_distance(k, &a, &b);
            prop_assert!(d >= -1e-6, "{k:?} negative: {d}");
            let r = distance::path_distance(k, &b, &a);
            prop_assert!((d - r).abs() < 1e-3 * (1.0 + d.abs()), "{k:?} asym {d} vs {r}");
        }
    }

    #[test]
    fn distance_identity(a in arb_path(24)) {
        for &k in DistanceKind::ALL {
            let d = distance::path_distance(k, &a, &a);
            prop_assert!(d.abs() < 1e-4, "{k:?} self-distance {d}");
        }
    }

    #[test]
    fn dtw_triangle_like_bound(a in arb_path(12), b in arb_path(12)) {
        // DTW is not a metric, but it is bounded above by the max pairwise
        // point distance (every matched pair costs at most that).
        let max_pair = a.iter()
            .flat_map(|p| b.iter().map(move |q| p.distance(q)))
            .fold(0.0f32, f32::max);
        let d = distance::dtw(&a, &b);
        prop_assert!(d <= max_pair + 1e-4);
    }

    #[test]
    fn frechet_upper_bounds_hausdorff(a in arb_path(12), b in arb_path(12)) {
        prop_assert!(distance::frechet(&a, &b) + 1e-4 >= distance::hausdorff(&a, &b));
    }

    #[test]
    fn trajectory_fill_gaps_dense_and_endpoint_preserving(t in arb_trajectory()) {
        let d = t.fill_gaps();
        prop_assert_eq!(d.len() as u32, t.span());
        prop_assert!(d.max_gap() <= 1);
        prop_assert_eq!(d.points().first().unwrap().bbox, t.points().first().unwrap().bbox);
        prop_assert_eq!(d.points().last().unwrap().bbox, t.points().last().unwrap().bbox);
    }

    #[test]
    fn clip_normalization_idempotent(t in arb_trajectory()) {
        let c = Clip::new(200.0, 200.0, vec![t]);
        let n1 = c.normalized();
        let n2 = n1.normalized();
        for (a, b) in n1.objects[0].points().iter().zip(n2.objects[0].points()) {
            prop_assert!((a.bbox.cx - b.bbox.cx).abs() < 1e-4);
            prop_assert!((a.bbox.cy - b.bbox.cy).abs() < 1e-4);
            prop_assert!((a.bbox.w - b.bbox.w).abs() < 1e-4);
            prop_assert!((a.bbox.h - b.bbox.h).abs() < 1e-4);
        }
    }

    #[test]
    fn resample_is_fixed_length_and_in_span(t in arb_trajectory(), n in 2usize..64) {
        let c = Clip::new(200.0, 200.0, vec![t]).resampled(n);
        prop_assert_eq!(c.objects[0].len(), n);
        prop_assert_eq!(c.objects[0].start_frame(), Some(0));
        prop_assert_eq!(c.objects[0].end_frame(), Some(n as u32 - 1));
    }

    #[test]
    fn feature_extraction_never_panics_and_is_finite(t in arb_trajectory(), n in 4usize..48) {
        let c = Clip::new(200.0, 200.0, vec![t]);
        let f = sketchql_trajectory::extract_features(&c, n).unwrap();
        prop_assert_eq!(f.data.len(), n * sketchql_trajectory::TOKEN_DIM);
        for v in &f.data {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn clip_distance_scale_invariant(t in arb_trajectory(), s in 0.5f32..5.0) {
        // Skip nearly-stationary trajectories where normalization blows up
        // residual jitter.
        prop_assume!(t.displacement() > 1.0);
        let a = Clip::new(200.0, 200.0, vec![t.clone()]);
        let scaled = Clip::new(
            1000.0,
            1000.0,
            vec![Trajectory::from_points(
                t.id,
                t.class,
                t.points().iter().map(|p| TrajPoint::new(p.frame, p.bbox.scaled(s))).collect(),
            )],
        );
        let d = distance::clip_distance(DistanceKind::Euclidean, &a, &scaled);
        prop_assert!(d < 1e-3, "scale should be normalized away, got {d}");
    }
}
