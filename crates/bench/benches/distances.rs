//! T1/T5 — raw cost of each classical trajectory distance on
//! canonical-length (32-point) paths, and feature extraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchql_bench::harness::Harness;
use sketchql_trajectory::{distance, extract_features, DistanceKind, Point2};
use std::hint::black_box;

fn rand_path(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Point2::new(0.5, 0.5);
    (0..n)
        .map(|_| {
            p = Point2::new(
                (p.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
                (p.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
            );
            p
        })
        .collect()
}

fn bench_distances(h: &mut Harness) {
    let a = rand_path(32, 1);
    let b = rand_path(32, 2);
    let mut group = h.group("path_distance_32pt");
    for &kind in DistanceKind::ALL {
        group.bench(kind.name(), |bch| {
            bch.iter(|| black_box(distance::path_distance(kind, black_box(&a), black_box(&b))))
        });
    }
    group.finish();

    // Scaling with path length for the quadratic measures.
    let mut group = h.group("dtw_scaling");
    for n in [16usize, 64, 256] {
        let a = rand_path(n, 3);
        let b = rand_path(n, 4);
        group.bench(n, |bch| {
            bch.iter(|| black_box(distance::dtw(black_box(&a), black_box(&b))))
        });
    }
    group.finish();

    let clip = sketchql_bench::bench_clip(9);
    h.bench("extract_features_32", |b| {
        b.iter(|| black_box(extract_features(black_box(&clip), 32)))
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_distances(&mut h);
}
