//! # sketchql-trajectory
//!
//! Geometry and trajectory substrate for SketchQL: bounding boxes, per-object
//! trajectories, multi-object clips, canonical normalization/resampling, the
//! encoder feature extractor, and the classical trajectory distance measures
//! (Euclidean, DTW, discrete Fréchet, Hausdorff) used as Matcher baselines.
//!
//! Everything in SketchQL — the 3D simulator's camera projections, the
//! tracker's outputs, the sketcher's drag-recorded queries, and the Matcher's
//! sliding windows — speaks the types defined here.

#![warn(missing_docs)]

pub mod bbox;
pub mod clip;
pub mod distance;
pub mod features;
pub mod geom;
pub mod object;
pub mod render;
pub mod simplify;
pub mod trajectory;

pub use bbox::BBox;
pub use clip::Clip;
pub use distance::{clip_distance, distance_to_similarity, path_distance, DistanceKind};
pub use features::{
    extract_features, ClipFeatures, FeatureError, DEFAULT_STEPS, MAX_OBJECTS, SLOT_DIM, TOKEN_DIM,
};
pub use geom::{angle_diff, wrap_angle, Point2, Point3};
pub use object::{ObjectClass, TrackId, UnknownClass};
pub use render::{render_frame, render_storyboard};
pub use simplify::{max_deviation, simplify_path};
pub use trajectory::{TrajPoint, Trajectory};
