//! In-tree stand-in for `serde_json`.
//!
//! Serializes the [`serde::Value`] data model of the in-tree serde shim to
//! JSON text and parses it back. Only the two entry points the workspace
//! uses are provided: [`to_string`] and [`from_str`].
//!
//! Number formatting: integers (fract == 0, within `i64`) print without a
//! fractional part; other finite floats print via `{:?}` (Rust's shortest
//! round-trip form, which is valid JSON); non-finite floats print as
//! `null`, matching upstream serde_json's behavior.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error from JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character {:?} at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: we started from valid UTF-8 and only stopped on ASCII.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: join a high surrogate with the
                            // following \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("hello \"world\"\n".into())),
            ("count".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(0.125)),
            ("neg".into(), Value::Num(-3.5)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]),
            ),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&v, &mut s);
            s
        };
        let back = parse_value_complete(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_round_trip_via_traits() {
        let data: Vec<(String, f32)> = vec![("a".into(), 1.5), ("b".into(), -0.25)];
        let text = to_string(&data).unwrap();
        let back: Vec<(String, f32)> = from_str(&text).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("truex").is_err());
    }

    #[test]
    fn parses_nested_whitespace_heavy_json() {
        let text = "\n{ \"a\" : [ 1 , { \"b\" : null } ] ,\t\"c\" : \"\\u0041\\u00e9\" }";
        let v = parse_value_complete(text).unwrap();
        assert_eq!(
            v,
            Value::Obj(vec![
                (
                    "a".into(),
                    Value::Arr(vec![
                        Value::Num(1.0),
                        Value::Obj(vec![("b".into(), Value::Null)])
                    ])
                ),
                ("c".into(), Value::Str("Aé".into())),
            ])
        );
    }
}
