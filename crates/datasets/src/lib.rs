//! # sketchql-datasets
//!
//! Synthetic evaluation datasets standing in for the real-world surveillance
//! videos (VIRAT [7]) the demo runs on. Provides:
//!
//! * an event vocabulary ([`EventKind`]) covering the demo's queries — Q1
//!   (left turn) and Q2 (car/person perpendicular crossing) — plus six more,
//! * a scene generator ([`generate_video`]) embedding ground-truth event
//!   occurrences among distractor traffic, recorded through per-family
//!   camera geometries ([`SceneFamily`]),
//! * the canonical user sketches for each query ([`canonical_sketch`],
//!   [`query_clip`]), and
//! * retrieval metrics ([`evaluate_retrieval`]).

#![warn(missing_docs)]

pub mod events;
pub mod generator;
pub mod queries;
pub mod retrieval;

pub use events::{distractor_script, EventKind};
pub use generator::{
    extend_video, generate_video, EventAnnotation, ExtendConfig, SceneFamily, SyntheticVideo,
    VideoConfig,
};
pub use queries::{
    canonical_sketch, query_clip, sample_path, CanonicalSketch, SketchObject, SketchStroke,
    CANVAS_H, CANVAS_W,
};
pub use retrieval::{evaluate_retrieval, PredictedMoment, RetrievalReport, TIOU_THRESH};
