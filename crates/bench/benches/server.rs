//! Server engine throughput: closed-loop clients against worker pools of
//! different widths, with byte-identity verification across them.
//!
//! This is a throughput benchmark, not a latency microbenchmark, so it
//! does not use the harness's per-iteration timer: each configuration
//! runs a fixed query load from `CLIENTS` closed-loop client threads and
//! reports wall-clock queries/second as
//!
//! ```text
//! BENCH server_throughput/workers=8 qps=41.0 queries=240 wall_ms=5853 avg_batch=5.2
//! BENCH server_throughput/speedup ratio=3.6 identical=1
//! ```
//!
//! The interesting case is a single-core machine: an 8-worker pool beats
//! a 1-worker pool not through CPU parallelism but through shared-scan
//! fusion — each worker drains up to `workers` queued same-dataset
//! queries and executes them as one `Matcher::search_batch` call, so
//! concurrent duplicate/overlapping queries (the demo's canonical event
//! queries, issued by many clients) share one embedding cache and one
//! batched encoder pass. A 1-worker engine never fuses
//! (`fused_batch = workers`), making it the honest serial baseline.
//! `identical=1` asserts every query's moments were byte-identical
//! across configurations; `scripts/bench_server.sh` gates on both
//! fields.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sketchql::{RetrievedMoment, VideoIndex};
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{Engine, EngineConfig, QuerySpec};

/// Closed-loop client threads (each has one query outstanding). Enough
/// to keep every worker's fused batch full with queries to spare.
const CLIENTS: usize = 48;

/// The query mix: every (dataset, event) pair below, round-robin. Two
/// popular events per dataset keeps the backlog realistic — many clients
/// asking the same canonical queries — which is what fusion feeds on.
const EVENTS: &[EventKind] = &[EventKind::LeftTurn, EventKind::RightTurn];
const DATASETS: &[&str] = &["alpha", "beta"];

struct RunOutcome {
    qps: f64,
    wall_ms: u128,
    avg_batch: f64,
    results: Vec<Vec<RetrievedMoment>>,
}

fn run_load(workers: usize, total_queries: usize) -> RunOutcome {
    let mut datasets = std::collections::BTreeMap::new();
    datasets.insert(
        "alpha".to_string(),
        VideoIndex::from_truth(&bench_video(1, 42)),
    );
    datasets.insert(
        "beta".to_string(),
        VideoIndex::from_truth(&bench_video(1, 43)),
    );
    let engine = Arc::new(Engine::start(
        bench_model(),
        datasets,
        EngineConfig {
            workers,
            queue_depth: 2 * CLIENTS,
            ..Default::default()
        },
    ));

    let specs: Vec<(String, EventKind)> = DATASETS
        .iter()
        .flat_map(|d| EVENTS.iter().map(|e| (d.to_string(), *e)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Vec<RetrievedMoment>>> =
        (0..total_queries).map(|_| Mutex::new(Vec::new())).collect();
    let batch_sizes: Vec<Mutex<usize>> = (0..total_queries).map(|_| Mutex::new(0)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let next = &next;
            let specs = &specs;
            let results = &results;
            let batch_sizes = &batch_sizes;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total_queries {
                    break;
                }
                let (dataset, event) = &specs[i % specs.len()];
                let result = engine
                    .execute(QuerySpec::new(dataset.clone(), query_clip(*event)))
                    .expect("bench queries must succeed");
                *results[i].lock().unwrap() = result.moments;
                *batch_sizes[i].lock().unwrap() = result.batch_size;
            });
        }
    });
    let wall = started.elapsed();
    engine.shutdown();

    let avg_batch = batch_sizes
        .iter()
        .map(|b| *b.lock().unwrap() as f64)
        .sum::<f64>()
        / total_queries as f64;
    RunOutcome {
        qps: total_queries as f64 / wall.as_secs_f64(),
        wall_ms: wall.as_millis(),
        avg_batch,
        results: results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    }
}

fn main() {
    let quick = std::env::var_os("SKETCHQL_BENCH_QUICK").is_some();
    let total_queries = if quick { 64 } else { 240 };
    println!(
        "# server throughput bench: {CLIENTS} closed-loop clients, {total_queries} queries, \
         telemetry feature {}",
        if cfg!(feature = "telemetry") {
            "on"
        } else {
            "off"
        }
    );

    let serial = run_load(1, total_queries);
    println!(
        "BENCH server_throughput/workers=1 qps={:.2} queries={} wall_ms={} avg_batch={:.2}",
        serial.qps, total_queries, serial.wall_ms, serial.avg_batch
    );

    let pooled = run_load(8, total_queries);
    println!(
        "BENCH server_throughput/workers=8 qps={:.2} queries={} wall_ms={} avg_batch={:.2}",
        pooled.qps, total_queries, pooled.wall_ms, pooled.avg_batch
    );

    let identical = serial.results == pooled.results;
    println!(
        "BENCH server_throughput/speedup ratio={:.2} identical={}",
        pooled.qps / serial.qps,
        i32::from(identical)
    );
    assert!(
        identical,
        "8-worker results diverged from the 1-worker baseline"
    );
}
