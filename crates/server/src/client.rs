//! A blocking wire-protocol client.
//!
//! Thin by design: [`Client::request`] writes one request line and reads
//! one response line; the typed helpers ([`Client::ping`],
//! [`Client::query_event`], …) wrap it and turn server-side
//! [`Response::Error`]s into [`ClientError::Server`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sketchql::RetrievedMoment;
use sketchql_telemetry::mint_trace_id;
use sketchql_trajectory::Clip;

use crate::engine::{DatasetInfo, EngineStats};
use crate::protocol::{ErrorKind, Request, Response, WireTrace};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, server hung up).
    Io(String),
    /// The server answered something the protocol does not allow here.
    Protocol(String),
    /// The server answered an explicit error.
    Server {
        /// Machine-readable error class.
        kind: ErrorKind,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One TCP connection to a SketchQL server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let json = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| ClientError::Protocol(format!("decode {:?}: {e}", line.trim())))
    }

    /// Pings the server; returns its protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Lists the server's loaded datasets.
    pub fn list_datasets(&mut self) -> Result<Vec<DatasetInfo>, ClientError> {
        match self.request(&Request::ListDatasets)? {
            Response::Datasets { datasets } => Ok(datasets),
            other => Err(unexpected("Datasets", &other)),
        }
    }

    /// Fetches the engine's statistics snapshot.
    pub fn stats(&mut self) -> Result<EngineStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Runs a canonical event query (e.g. `"left_turn"`) on `dataset`.
    /// The client mints the trace id, so the query is traceable
    /// end-to-end under an id the caller knew *before* the server saw
    /// the query (see [`QueryOutcome::trace_id`]).
    pub fn query_event(
        &mut self,
        dataset: &str,
        event: &str,
        top_k: Option<usize>,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ClientError> {
        self.query_event_with(
            dataset,
            event,
            &QueryOptions {
                top_k,
                deadline,
                ..QueryOptions::default()
            },
        )
    }

    /// Like [`Client::query_event`], with the full option set
    /// (admission class, priority, caller-minted trace id).
    pub fn query_event_with(
        &mut self,
        dataset: &str,
        event: &str,
        opts: &QueryOptions,
    ) -> Result<QueryOutcome, ClientError> {
        self.run_query(Request::Query {
            dataset: dataset.to_string(),
            event: Some(event.to_string()),
            clip: None,
            top_k: opts.top_k,
            deadline_ms: opts.deadline.map(|d| d.as_millis() as u64),
            trace_id: Some(opts.trace_id.unwrap_or_else(mint_trace_id)),
            class: opts.class.clone(),
            priority: opts.priority,
        })
    }

    /// Runs an inline sketch clip on `dataset`.
    pub fn query_clip(
        &mut self,
        dataset: &str,
        clip: Clip,
        top_k: Option<usize>,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ClientError> {
        self.query_clip_with(
            dataset,
            clip,
            &QueryOptions {
                top_k,
                deadline,
                ..QueryOptions::default()
            },
        )
    }

    /// Like [`Client::query_clip`], with the full option set.
    pub fn query_clip_with(
        &mut self,
        dataset: &str,
        clip: Clip,
        opts: &QueryOptions,
    ) -> Result<QueryOutcome, ClientError> {
        self.run_query(Request::Query {
            dataset: dataset.to_string(),
            event: None,
            clip: Some(clip),
            top_k: opts.top_k,
            deadline_ms: opts.deadline.map(|d| d.as_millis() as u64),
            trace_id: Some(opts.trace_id.unwrap_or_else(mint_trace_id)),
            class: opts.class.clone(),
            priority: opts.priority,
        })
    }

    fn run_query(&mut self, request: Request) -> Result<QueryOutcome, ClientError> {
        match self.request(&request)? {
            Response::Moments {
                moments,
                queue_wait_ms,
                execute_ms,
                batch_size,
                trace_id,
            } => Ok(QueryOutcome {
                moments,
                queue_wait_ms,
                execute_ms,
                batch_size,
                trace_id,
            }),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(unexpected("Moments", &other)),
        }
    }

    /// Fetches traces from the server's flight recorder: a specific id,
    /// or the most recent `limit` traces (server default when `None`).
    pub fn trace(
        &mut self,
        trace_id: Option<u64>,
        limit: Option<usize>,
    ) -> Result<Vec<WireTrace>, ClientError> {
        match self.request(&Request::Trace { trace_id, limit })? {
            Response::Traces { traces } => Ok(traces),
            other => Err(unexpected("Traces", &other)),
        }
    }

    /// Fetches a CPU profile in folded-stack (flamegraph) format.
    /// `seconds = None` (or 0) answers instantly from the server's
    /// continuous profiler; a positive window samples fresh for that
    /// long (server-capped at 60 s) at `hz` (server default when
    /// `None`). Note a fresh window blocks this connection until the
    /// window closes.
    pub fn profile(
        &mut self,
        seconds: Option<u64>,
        hz: Option<u64>,
    ) -> Result<ProfileOutcome, ClientError> {
        match self.request(&Request::Profile { seconds, hz })? {
            Response::Profile {
                folded,
                samples,
                duration_ms,
            } => Ok(ProfileOutcome {
                folded,
                samples,
                duration_ms,
            }),
            other => Err(unexpected("Profile", &other)),
        }
    }

    /// Registers a standing query for a canonical event (e.g.
    /// `"left_turn"`): the server evaluates it against every ingest
    /// epoch appended to `dataset` from now on and queues the matches
    /// for [`Client::notifications`].
    pub fn register_event(
        &mut self,
        dataset: &str,
        event: &str,
        min_score: Option<f32>,
        top_k: Option<usize>,
    ) -> Result<Registered, ClientError> {
        self.run_register(Request::Register {
            dataset: dataset.to_string(),
            event: Some(event.to_string()),
            clip: None,
            min_score,
            top_k,
        })
    }

    /// Like [`Client::register_event`], with an inline sketch clip.
    pub fn register_clip(
        &mut self,
        dataset: &str,
        clip: Clip,
        min_score: Option<f32>,
        top_k: Option<usize>,
    ) -> Result<Registered, ClientError> {
        self.run_register(Request::Register {
            dataset: dataset.to_string(),
            event: None,
            clip: Some(clip),
            min_score,
            top_k,
        })
    }

    fn run_register(&mut self, request: Request) -> Result<Registered, ClientError> {
        match self.request(&request)? {
            Response::Registered {
                registration_id,
                watermark,
            } => Ok(Registered {
                registration_id,
                watermark,
            }),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Removes a standing query; pending notifications are discarded.
    pub fn unregister(&mut self, registration_id: u64) -> Result<(), ClientError> {
        match self.request(&Request::Unregister { registration_id })? {
            Response::Unregistered { .. } => Ok(()),
            other => Err(unexpected("Unregistered", &other)),
        }
    }

    /// Drains queued matches for a standing query, oldest first — at
    /// most `max` of them (all when `None`). Drained matches are gone
    /// from the server; delivery is at-most-once.
    pub fn notifications(
        &mut self,
        registration_id: u64,
        max: Option<usize>,
    ) -> Result<LiveFeed, ClientError> {
        match self.request(&Request::Notifications {
            registration_id,
            max,
        })? {
            Response::Notifications {
                registration_id,
                epoch,
                watermark,
                dropped,
                matches,
            } => Ok(LiveFeed {
                registration_id,
                epoch,
                watermark,
                dropped,
                matches,
            }),
            other => Err(unexpected("Notifications", &other)),
        }
    }

    /// Fetches the server's metric registry in Prometheus text format.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::MetricsText { prometheus } => Ok(prometheus),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

/// Optional knobs for [`Client::query_event_with`] /
/// [`Client::query_clip_with`]. `Default` leaves every decision to the
/// server: its configured top-k, no deadline, the default admission
/// class at its configured priority, and a client-minted trace id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// Truncate results to this many moments.
    pub top_k: Option<usize>,
    /// Per-query deadline.
    pub deadline: Option<Duration>,
    /// Admission class (server falls back to its default class for
    /// names it has no config for).
    pub class: Option<String>,
    /// Base priority override; higher runs first.
    pub priority: Option<i32>,
    /// Caller-minted 48-bit trace id (minted for you when `None`).
    pub trace_id: Option<u64>,
}

/// A successful query as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Retrieved moments, best first.
    pub moments: Vec<RetrievedMoment>,
    /// Milliseconds the query waited for a worker.
    pub queue_wait_ms: u64,
    /// Milliseconds the (possibly fused) scan took.
    pub execute_ms: u64,
    /// Queries that shared the scan (1 = ran alone).
    pub batch_size: usize,
    /// The trace id the query ran under (the client-minted id, echoed
    /// by the server); fetch the span tree with [`Client::trace`].
    pub trace_id: u64,
}

/// A standing-query registration as seen by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// Handle for [`Client::unregister`] / [`Client::notifications`].
    pub registration_id: u64,
    /// Frame the standing query starts watching from: only epochs
    /// appended after this point produce notifications.
    pub watermark: u32,
}

/// One drain of a standing query's notification queue.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveFeed {
    /// The standing query drained.
    pub registration_id: u64,
    /// Latest ingest epoch the query has been evaluated against.
    pub epoch: u64,
    /// Frames evaluated through.
    pub watermark: u32,
    /// Matches shed to queue overflow, cumulative since registration.
    pub dropped: u64,
    /// Queued matches, oldest first.
    pub matches: Vec<crate::live::LiveMatch>,
}

/// A server CPU profile as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// Folded stacks, one `thread;span;...;span count` line each —
    /// feed directly to `flamegraph.pl` / `inferno-flamegraph`.
    pub folded: String,
    /// Stack samples aggregated into the report.
    pub samples: u64,
    /// Wall-clock span of the sampling window, milliseconds.
    pub duration_ms: u64,
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { kind, message } => ClientError::Server {
            kind: *kind,
            message: message.clone(),
        },
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
