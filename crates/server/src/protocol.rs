//! The wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response line per request, in order. Both
//! sides are plain externally-tagged serde enums, so a session looks
//! like:
//!
//! ```text
//! → "Ping"
//! ← {"Pong":{"version":2}}
//! → {"Query":{"dataset":"traffic","event":"left_turn","clip":null,"top_k":5,"deadline_ms":2000}}
//! ← {"Moments":{"moments":[...],"queue_wait_ms":0,"execute_ms":41,"batch_size":1}}
//! ```
//!
//! Requests carry every field (absent options are `null`); the vendored
//! serde shim rejects missing fields rather than defaulting them, which
//! keeps the protocol unambiguous. A request the server cannot parse is
//! answered with [`Response::Error`] of kind [`ErrorKind::BadRequest`] —
//! the connection stays usable.
//!
//! [`Request::Query`] names its sketch either by `event` (a canonical
//! event query from the datasets crate, e.g. `"left_turn"`) or by an
//! inline `clip` (a full compiled sketch). Exactly one must be non-null;
//! `clip` wins if both are.

use serde::{Deserialize, Serialize};
use sketchql::RetrievedMoment;
use sketchql_trajectory::Clip;

use crate::engine::{DatasetInfo, EngineError, EngineStats};

/// Bumped on incompatible wire changes; echoed by [`Response::Pong`].
/// Version 2 added store-effectiveness fields to `Stats` and the
/// `stored` flag to dataset listings.
pub const PROTOCOL_VERSION: u32 = 2;

/// A client request: one JSON value per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List loaded datasets.
    ListDatasets,
    /// Engine queue/traffic statistics.
    Stats,
    /// Execute a moment query.
    Query {
        /// Dataset to search.
        dataset: String,
        /// Canonical event query name (e.g. `"left_turn"`), or null.
        event: Option<String>,
        /// Inline query clip, or null. Takes precedence over `event`.
        clip: Option<Clip>,
        /// Truncate results to this many moments, or null for the
        /// server's configured top-k.
        top_k: Option<usize>,
        /// Per-query deadline in milliseconds, or null for the server's
        /// default policy.
        deadline_ms: Option<u64>,
    },
    /// Ask the server process to shut down gracefully.
    Shutdown,
}

/// A server response: one JSON value per line, matching request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Answer to [`Request::ListDatasets`].
    Datasets {
        /// Loaded datasets in name order.
        datasets: Vec<DatasetInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Engine statistics snapshot.
        stats: EngineStats,
    },
    /// Successful answer to [`Request::Query`].
    Moments {
        /// Retrieved moments, best first.
        moments: Vec<RetrievedMoment>,
        /// Milliseconds the query waited for a worker.
        queue_wait_ms: u64,
        /// Milliseconds the (possibly fused) scan took.
        execute_ms: u64,
        /// Queries that shared the scan (1 = ran alone).
        batch_size: usize,
    },
    /// Answer to [`Request::Shutdown`]; the server stops accepting work.
    ShutdownAck,
    /// Any request that could not be served.
    Error {
        /// Machine-readable error class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable error classes for [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Admission queue full; retry with backoff.
    Overloaded,
    /// Server is shutting down.
    ShuttingDown,
    /// The query's deadline passed before it finished.
    DeadlineExceeded,
    /// The query was cancelled.
    Cancelled,
    /// No dataset with that name is loaded.
    UnknownDataset,
    /// The `event` name is not in the query catalogue.
    UnknownEvent,
    /// The request line did not parse or was self-contradictory.
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl Response {
    /// Maps an engine rejection/failure onto its wire representation.
    pub fn from_engine_error(e: &EngineError) -> Response {
        let kind = match e {
            EngineError::Overloaded { .. } => ErrorKind::Overloaded,
            EngineError::ShuttingDown => ErrorKind::ShuttingDown,
            EngineError::UnknownDataset(_) => ErrorKind::UnknownDataset,
            EngineError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            EngineError::Cancelled => ErrorKind::Cancelled,
            EngineError::Similarity(_) => ErrorKind::BadRequest,
            EngineError::WorkerLost => ErrorKind::Internal,
        };
        Response::Error {
            kind,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::ListDatasets,
            Request::Stats,
            Request::Query {
                dataset: "traffic".into(),
                event: Some("left_turn".into()),
                clip: None,
                top_k: Some(5),
                deadline_ms: None,
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "wire lines must be single-line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let resps = vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Response::Datasets {
                datasets: vec![DatasetInfo {
                    name: "traffic".into(),
                    frames: 900,
                    tracks: 12,
                    stored: true,
                }],
            },
            Response::Moments {
                moments: vec![RetrievedMoment {
                    start: 10,
                    end: 90,
                    score: 0.625,
                    track_ids: vec![3],
                }],
                queue_wait_ms: 0,
                execute_ms: 41,
                batch_size: 2,
            },
            Response::ShutdownAck,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "overloaded".into(),
            },
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn garbage_line_is_a_parse_error_not_a_panic() {
        assert!(serde_json::from_str::<Request>("{\"nope\"").is_err());
        assert!(serde_json::from_str::<Request>("{\"Frobnicate\":{}}").is_err());
    }
}
