//! Training objectives, composed from tape primitives.
//!
//! The encoder is trained with the NT-Xent (InfoNCE) contrastive loss over
//! batches of (anchor, positive) clip pairs produced by the simulator: the
//! two views of the same 3D clip attract, all other batch members repel. The
//! Tuner fine-tunes with a triplet loss over user-labeled clips.

use crate::modules::Graph;
use crate::tape::NodeId;

/// NT-Xent / InfoNCE loss over `B` (anchor, positive) embedding pairs.
///
/// `anchors[i]` and `positives[i]` must each be `1 x D` (typically
/// L2-normalized encoder outputs). The loss is the symmetrized cross-entropy
/// of the `B x B` cosine-similarity matrix against the diagonal:
/// anchor `i` must pick out positive `i` among all positives, and vice
/// versa.
///
/// # Panics
/// If the pair lists are empty or of different lengths.
pub fn nt_xent(
    g: &mut Graph<'_>,
    anchors: &[NodeId],
    positives: &[NodeId],
    temperature: f32,
) -> NodeId {
    assert!(!anchors.is_empty(), "nt_xent needs at least one pair");
    assert_eq!(anchors.len(), positives.len(), "pair count mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let a = g.tape.concat_rows(anchors); // B x D
    let p = g.tape.concat_rows(positives); // B x D
    let pt = g.tape.transpose(p);
    let sims = g.tape.matmul(a, pt); // B x B
    let logits = g.tape.scale(sims, 1.0 / temperature);
    let targets: Vec<usize> = (0..anchors.len()).collect();
    let loss_a = g.tape.cross_entropy_rows(logits, targets.clone());
    let logits_t = g.tape.transpose(logits);
    let loss_p = g.tape.cross_entropy_rows(logits_t, targets);
    let sum = g.tape.add(loss_a, loss_p);
    g.tape.scale(sum, 0.5)
}

/// Triplet margin loss on cosine similarity:
/// `max(0, margin - sim(a, pos) + sim(a, neg))`, averaged over triplets.
///
/// Embeddings must be `1 x D` unit vectors.
pub fn triplet(g: &mut Graph<'_>, triplets: &[(NodeId, NodeId, NodeId)], margin: f32) -> NodeId {
    assert!(
        !triplets.is_empty(),
        "triplet loss needs at least one triplet"
    );
    let mut terms = Vec::with_capacity(triplets.len());
    for &(a, pos, neg) in triplets {
        let sim_pos = dot_rows(g, a, pos); // 1x1
        let sim_neg = dot_rows(g, a, neg); // 1x1
        let diff = g.tape.sub(sim_neg, sim_pos); // sim_neg - sim_pos
        let m = g.input(crate::tensor::Tensor::scalar(margin));
        let shifted = g.tape.add(diff, m);
        terms.push(g.tape.relu(shifted));
    }
    let stacked = g.tape.concat_rows(&terms);
    g.tape.mean_all(stacked)
}

/// Mean squared error between two same-shape tensors.
pub fn mse(g: &mut Graph<'_>, pred: NodeId, target: NodeId) -> NodeId {
    let diff = g.tape.sub(pred, target);
    let sq = g.tape.mul(diff, diff);
    g.tape.mean_all(sq)
}

/// Dot product of two `1 x D` rows as a `1 x 1` node.
fn dot_rows(g: &mut Graph<'_>, a: NodeId, b: NodeId) -> NodeId {
    let bt = g.tape.transpose(b);
    g.tape.matmul(a, bt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::ParamStore;
    use crate::tensor::Tensor;

    fn unit(v: Vec<f32>) -> Tensor {
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        Tensor::from_vec(1, v.len(), v.into_iter().map(|x| x / n).collect())
    }

    #[test]
    fn nt_xent_low_when_pairs_align() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        // Orthogonal anchors, positives identical to anchors.
        let a1 = g.input(unit(vec![1.0, 0.0, 0.0]));
        let a2 = g.input(unit(vec![0.0, 1.0, 0.0]));
        let p1 = g.input(unit(vec![1.0, 0.0, 0.0]));
        let p2 = g.input(unit(vec![0.0, 1.0, 0.0]));
        let loss = nt_xent(&mut g, &[a1, a2], &[p1, p2], 0.1);
        assert!(g.tape.value(loss).item() < 0.01);
    }

    #[test]
    fn nt_xent_high_when_pairs_swapped() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a1 = g.input(unit(vec![1.0, 0.0, 0.0]));
        let a2 = g.input(unit(vec![0.0, 1.0, 0.0]));
        // Positives point at the *other* anchor.
        let p1 = g.input(unit(vec![0.0, 1.0, 0.0]));
        let p2 = g.input(unit(vec![1.0, 0.0, 0.0]));
        let loss = nt_xent(&mut g, &[a1, a2], &[p1, p2], 0.1);
        assert!(g.tape.value(loss).item() > 2.0);
    }

    #[test]
    fn nt_xent_random_baseline_is_log_b() {
        // With all-identical embeddings the loss is exactly ln(B).
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let e = unit(vec![1.0, 1.0]);
        let ids: Vec<_> = (0..4).map(|_| g.input(e.clone())).collect();
        let loss = nt_xent(&mut g, &ids, &ids, 1.0);
        let expect = (4.0f32).ln();
        assert!((g.tape.value(loss).item() - expect).abs() < 1e-4);
    }

    #[test]
    fn nt_xent_is_differentiable() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a = g.input(unit(vec![0.8, 0.2, 0.1]));
        let p = g.input(unit(vec![0.7, 0.3, 0.0]));
        let n = g.input(unit(vec![-0.5, 0.5, 0.7]));
        let loss = nt_xent(&mut g, &[a, n], &[p, n], 0.5);
        let grads = g.tape.backward(loss);
        assert!(grads.get(a).is_some());
        assert!(grads.get(a).unwrap().is_finite());
    }

    #[test]
    fn triplet_zero_when_margin_satisfied() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a = g.input(unit(vec![1.0, 0.0]));
        let pos = g.input(unit(vec![1.0, 0.0]));
        let neg = g.input(unit(vec![-1.0, 0.0]));
        // sim_pos = 1, sim_neg = -1, margin 0.5: hinge inactive.
        let loss = triplet(&mut g, &[(a, pos, neg)], 0.5);
        assert_eq!(g.tape.value(loss).item(), 0.0);
    }

    #[test]
    fn triplet_positive_when_violated() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a = g.input(unit(vec![1.0, 0.0]));
        let pos = g.input(unit(vec![0.0, 1.0])); // sim 0
        let neg = g.input(unit(vec![1.0, 0.0])); // sim 1
        let loss = triplet(&mut g, &[(a, pos, neg)], 0.5);
        // hinge = 0.5 - 0 + 1 = 1.5
        assert!((g.tape.value(loss).item() - 1.5).abs() < 1e-5);
    }

    #[test]
    fn mse_known_value() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a = g.input(Tensor::from_vec(1, 2, vec![1.0, 3.0]));
        let b = g.input(Tensor::from_vec(1, 2, vec![0.0, 1.0]));
        let loss = mse(&mut g, a, b);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((g.tape.value(loss).item() - 2.5).abs() < 1e-6);
    }
}
