//! T5 — full query latency: sliding-window search over videos of
//! increasing length, learned similarity vs the DTW baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sketchql::{ClassicalSimilarity, Matcher, MaterializeConfig, MaterializedWindows, VideoIndex};
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_trajectory::DistanceKind;
use std::hint::black_box;

fn bench_matcher(c: &mut Criterion) {
    let model = bench_model();
    let query = query_clip(EventKind::LeftTurn);

    let mut group = c.benchmark_group("matcher_search");
    group.sample_size(10);
    for events_per_kind in [1usize, 2] {
        let video = bench_video(events_per_kind, 42);
        let idx = VideoIndex::from_truth(&video);
        group.bench_with_input(BenchmarkId::new("learned", idx.frames), &idx, |b, idx| {
            let m = Matcher::new(model.similarity());
            b.iter(|| black_box(m.search(idx, black_box(&query))))
        });
        group.bench_with_input(BenchmarkId::new("dtw", idx.frames), &idx, |b, idx| {
            let m = Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw));
            b.iter(|| black_box(m.search(idx, black_box(&query))))
        });
    }
    group.finish();

    // Materialized-window fast path: build once, query many times.
    let video = bench_video(1, 44);
    let idx1 = VideoIndex::from_truth(&video);
    let sim = model.similarity();
    let mat = MaterializedWindows::build(&idx1, &sim, MaterializeConfig::default());
    let mut group = c.benchmark_group("matcher_materialized");
    group.bench_function("query_after_build", |b| {
        b.iter(|| black_box(mat.query(&sim, black_box(&query), 10, 0.45)))
    });
    group.finish();

    // Multi-object query (Q2): combinatorial candidate generation.
    let mut group = c.benchmark_group("matcher_search_multiobject");
    group.sample_size(10);
    let video = bench_video(1, 43);
    let idx = VideoIndex::from_truth(&video);
    let q2 = query_clip(EventKind::PerpendicularCrossing);
    group.bench_function("learned_q2", |b| {
        let m = Matcher::new(model.similarity());
        b.iter(|| black_box(m.search(&idx, black_box(&q2))))
    });
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let video = bench_video(1, 45);
    let idx = VideoIndex::from_truth(&video);
    let rule = sketchql::expert_rule(sketchql_datasets::EventKind::LeftTurn);
    let cfg = sketchql::RuleSearchConfig::default();
    let mut group = c.benchmark_group("rules_baseline");
    group.sample_size(20);
    group.bench_function("left_turn_rule_eval", |b| {
        b.iter(|| black_box(sketchql::evaluate_rule(&idx, &rule, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_matcher, bench_rules);
criterion_main!(benches);
