//! Integration tests for the tracing layer: trace-scoped span
//! attribution, flight-recorder retention, slow-query logging, and the
//! stage-union math behind stage percentages.
//!
//! Like `telemetry_core`, these run in both feature configurations:
//! assertions about observed values are gated on
//! `sketchql_telemetry::is_enabled()`; API-shape assertions always run.

use sketchql_telemetry as tel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Two queries racing on separate threads must each end up with exactly
/// their own spans — the regression test for the cross-query attribution
/// bug where any worker could steal another query's spans out of the
/// shared thread-local buffer.
#[test]
fn concurrent_queries_keep_their_own_spans() {
    const NAMES: [&str; 2] = ["test.attr.left", "test.attr.right"];
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let ctx = tel::TraceContext::new();
                let guard = ctx.enter();
                barrier.wait(); // both queries in flight at once
                {
                    let _span = tel::span(NAMES[i]);
                    std::hint::black_box(0u64);
                }
                barrier.wait(); // neither finalizes before both spans landed
                drop(guard);
                (i, ctx.id(), ctx.finalize())
            })
        })
        .collect();
    for handle in handles {
        let (i, id, trace) = handle.join().unwrap();
        if tel::is_enabled() {
            let trace = trace.expect("first finalize returns the trace");
            assert_eq!(trace.trace_id, id);
            assert_eq!(
                trace.spans.len(),
                1,
                "trace {i} must hold exactly its own span, got {:?}",
                trace.spans
            );
            assert_eq!(trace.spans[0].name, NAMES[i]);
        } else {
            assert!(trace.is_none());
        }
    }
}

/// A thread that entered several traces (a fused batch executing one
/// shared scan) delivers each completed span to all of them.
#[test]
fn fused_entry_delivers_shared_spans_to_every_member() {
    let a = tel::TraceContext::new();
    let b = tel::TraceContext::new();
    let guard_a = a.enter();
    let guard_b = b.enter();
    {
        let _shared = tel::span("test.fused.scan");
        std::hint::black_box(0u64);
    }
    drop(guard_b);
    drop(guard_a);
    let trace_a = a.finalize();
    let trace_b = b.finalize();
    if tel::is_enabled() {
        for trace in [trace_a.unwrap(), trace_b.unwrap()] {
            assert_eq!(trace.spans.len(), 1);
            assert_eq!(trace.spans[0].name, "test.fused.scan");
        }
    }
}

/// Spans completed while a trace is entered belong to the trace; the
/// legacy thread-local buffer only sees spans from untraced stretches.
#[test]
fn traced_spans_do_not_leak_into_the_thread_buffer() {
    let _ = tel::take_finished_spans();
    let ctx = tel::TraceContext::new();
    {
        let _guard = ctx.enter();
        let _span = tel::span("test.leak.traced");
    }
    {
        let _span = tel::span("test.leak.untraced");
    }
    let leftovers = tel::take_finished_spans();
    ctx.finalize();
    if tel::is_enabled() {
        assert_eq!(leftovers.len(), 1);
        assert_eq!(leftovers[0].name, "test.leak.untraced");
    } else {
        assert!(leftovers.is_empty());
    }
}

/// `stage_nanos_sum` is the union of the depth-0 intervals: exact
/// duplicates collapse, partial overlaps merge, and nested (depth > 0)
/// spans are ignored — so stage coverage can never exceed 100% of the
/// wall clock. Built directly from public fields so the math is checked
/// in both feature configurations.
#[test]
fn stage_sum_is_an_interval_union_not_a_plain_sum() {
    let ms = 1_000_000u64;
    let span = |name: &'static str, depth: usize, start: u64, nanos: u64| tel::SpanRecord {
        name,
        depth,
        start_nanos: start,
        nanos,
    };
    let report = tel::QueryReport {
        label: "union/check".into(),
        total_nanos: 10 * ms,
        spans: vec![
            span("test.union.a", 0, 0, 2 * ms),
            span("test.union.dup", 0, 0, 2 * ms), // duplicate interval
            span("test.union.b", 0, ms, 2 * ms),  // overlaps a by 1 ms
            span("test.union.nested", 1, 0, 50 * ms), // nested: ignored
        ],
        ..Default::default()
    };
    // a ∪ dup ∪ b = [0, 3 ms); the nested 50 ms span must not count.
    assert_eq!(report.stage_nanos_sum(), 3 * ms);
    assert!(report.stage_nanos_sum() <= report.total_nanos);

    // Disjoint intervals still add up exactly.
    let disjoint = tel::QueryReport {
        total_nanos: 10 * ms,
        spans: vec![
            span("test.union.a", 0, 0, 2 * ms),
            span("test.union.b", 0, 5 * ms, 3 * ms),
        ],
        ..Default::default()
    };
    assert_eq!(disjoint.stage_nanos_sum(), 5 * ms);
}

/// The same property through the live path: a trace fed overlapping
/// depth-0 spans (as a fused batch produces) reports a stage union no
/// larger than the report's wall clock.
#[test]
fn recorder_stage_percentages_cannot_exceed_total() {
    #[cfg(feature = "enabled")]
    {
        let ctx = tel::TraceContext::new();
        let t0 = Instant::now();
        ctx.record_span("test.pct.a", 0, t0, 2_000_000);
        ctx.record_span("test.pct.dup", 0, t0, 2_000_000);
        let rec = tel::Recorder::begin_with_trace(ctx);
        std::thread::sleep(Duration::from_millis(5));
        let report = rec.finish("pct/check");
        assert_eq!(report.stage_nanos_sum(), 2_000_000);
        assert!(report.stage_nanos_sum() <= report.total_nanos);
    }
}

/// Ring-buffer semantics of a private [`tel::FlightRecorder`]: oldest
/// entries evicted, `recent` newest-first, `find` by id.
#[test]
fn flight_recorder_retains_the_newest_traces() {
    let recorder = tel::FlightRecorder::with_capacity(4);
    assert_eq!(recorder.capacity(), 4);
    for id in 1..=10u64 {
        recorder.record(Arc::new(tel::QueryTrace {
            trace_id: id,
            label: format!("q{id}"),
            outcome: tel::TraceOutcome::Completed,
            batch_size: 1,
            start_nanos: id,
            total_nanos: 1,
            alloc_bytes: 0,
            alloc_count: 0,
            cpu_nanos: 0,
            spans: Vec::new(),
        }));
    }
    assert_eq!(recorder.recorded(), 10);
    let recent: Vec<u64> = recorder.recent(10).iter().map(|t| t.trace_id).collect();
    assert_eq!(recent, vec![10, 9, 8, 7], "newest first, capacity-capped");
    assert!(recorder.find(3).is_none(), "evicted by the ring");
    assert_eq!(recorder.find(9).map(|t| t.trace_id), Some(9));
    assert_eq!(recorder.recent(2).len(), 2);
}

/// Eight threads hammering a counter, a histogram, and the trace
/// machinery at once: totals must be exact and every finalized trace
/// must land in the ring exactly once with exactly its own span.
#[test]
fn stress_counters_histograms_and_ring_from_eight_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    let ring = Arc::new(tel::FlightRecorder::with_capacity(THREADS * PER_THREAD));
    let ids = Arc::new(Mutex::new(Vec::<u64>::new()));
    let misattributed = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let ids = Arc::clone(&ids);
            let misattributed = Arc::clone(&misattributed);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    tel::counter("test.stress.ops").inc();
                    tel::histogram("test.stress.lat", &[1.0, 10.0]).observe(i as f64);
                    let ctx = tel::TraceContext::new();
                    {
                        let _guard = ctx.enter();
                        let _span = tel::span("test.stress.work");
                    }
                    if let Some(trace) = ctx.finalize() {
                        if trace.spans.len() != 1 || trace.spans[0].name != "test.stress.work" {
                            misattributed.fetch_add(1, Ordering::Relaxed);
                        }
                        ids.lock().unwrap().push(trace.trace_id);
                        ring.record(trace);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let total = (THREADS * PER_THREAD) as u64;
    if tel::is_enabled() {
        assert_eq!(tel::counter("test.stress.ops").get(), total);
        assert_eq!(
            tel::histogram("test.stress.lat", &[1.0, 10.0]).count(),
            total
        );
        assert_eq!(misattributed.load(Ordering::Relaxed), 0);
        assert_eq!(ring.recorded(), total);
        // No lost or duplicated trace records: the ring holds every id
        // exactly once.
        let mut expected = ids.lock().unwrap().clone();
        let mut held: Vec<u64> = ring
            .recent(THREADS * PER_THREAD)
            .iter()
            .map(|t| t.trace_id)
            .collect();
        expected.sort_unstable();
        held.sort_unstable();
        assert_eq!(held.len(), THREADS * PER_THREAD);
        assert_eq!(held, expected);
    } else {
        assert_eq!(tel::counter("test.stress.ops").get(), 0);
        assert_eq!(ring.recorded(), 0);
    }
}

/// A writer that appends into a shared buffer, so the test can read back
/// what the slow-query log wrote.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The slow-query log records queries over the threshold and *all*
/// abnormal outcomes (shed, cancelled, …) regardless of duration; fast
/// completed queries stay out. The sink is process-global, so every
/// assertion filters by this test's own trace ids. This is the only
/// test in the binary that configures the sink.
#[test]
fn slow_query_log_captures_slow_and_shed_queries() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    // Huge threshold: only abnormal outcomes (and nothing by duration).
    tel::configure_slow_query_log(
        Box::new(SharedBuf(Arc::clone(&buf))),
        Duration::from_secs(3600),
    );

    let shed = tel::TraceContext::new();
    shed.set_label("slowlog/shed");
    shed.set_outcome(tel::TraceOutcome::Shed);
    let shed_id = shed.id();
    drop(shed); // Drop safety net must finalize and log it

    let fast = tel::TraceContext::new();
    fast.set_label("slowlog/fast");
    let fast_id = fast.id();
    fast.finalize();

    // Threshold zero: now even a fast completed query qualifies.
    tel::configure_slow_query_log(Box::new(SharedBuf(Arc::clone(&buf))), Duration::ZERO);
    let slow = tel::TraceContext::new();
    slow.set_label("slowlog/slow");
    let slow_id = slow.id();
    std::thread::sleep(Duration::from_millis(2));
    slow.finalize();

    tel::disable_slow_query_log();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    if tel::is_enabled() {
        assert!(
            text.contains(&tel::format_trace_id(shed_id)),
            "shed query must be logged despite the huge threshold: {text}"
        );
        assert!(
            !text.contains(&tel::format_trace_id(fast_id)),
            "fast completed query must not be logged under a huge threshold"
        );
        assert!(
            text.contains(&tel::format_trace_id(slow_id)),
            "over-threshold query must be logged"
        );
        // Every line the sink wrote is standalone valid JSON.
        for line in text.lines() {
            let parsed: serde::Value = serde_json::from_str(line).expect("slow log line is JSON");
            assert!(matches!(parsed, serde::Value::Obj(_)));
        }
    } else {
        assert!(text.is_empty());
    }
}

/// `QueryTrace::to_json` round-trips through the JSON parser and the
/// waterfall view sorts spans by their offset into the query.
#[test]
fn finalized_traces_export_ordered_waterfalls() {
    let trace = tel::QueryTrace {
        trace_id: 0xabc,
        label: "wf/check".into(),
        outcome: tel::TraceOutcome::DeadlineExceeded,
        batch_size: 3,
        start_nanos: 100,
        total_nanos: 5_000,
        alloc_bytes: 4_096,
        alloc_count: 7,
        cpu_nanos: 3_000,
        spans: vec![
            tel::SpanRecord {
                name: "test.wf.late",
                depth: 0,
                start_nanos: 2_100,
                nanos: 500,
            },
            tel::SpanRecord {
                name: "test.wf.early",
                depth: 0,
                start_nanos: 150,
                nanos: 1_000,
            },
        ],
    };
    let rows = trace.waterfall();
    assert_eq!(rows[0], ("test.wf.early", 0, 50, 1_000));
    assert_eq!(rows[1], ("test.wf.late", 0, 2_000, 500));

    let json = trace.to_json();
    let parsed: serde::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let serde::Value::Obj(fields) = parsed else {
        panic!("trace JSON must be an object");
    };
    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
    assert_eq!(
        get("trace_id"),
        Some(serde::Value::Str("000000000abc".into()))
    );
    assert_eq!(
        get("outcome"),
        Some(serde::Value::Str("deadline_exceeded".into()))
    );
    assert_eq!(get("batch_size"), Some(serde::Value::Num(3.0)));
    assert!(matches!(get("spans"), Some(serde::Value::Arr(a)) if a.len() == 2));
}

/// Trace ids: 48-bit, never zero, printable and parseable both ways.
#[test]
fn trace_ids_mint_format_and_parse() {
    for _ in 0..64 {
        let id = tel::mint_trace_id();
        assert_ne!(id, 0);
        assert!(id < (1u64 << 48));
        let text = tel::format_trace_id(id);
        assert_eq!(text.len(), 12);
        assert_eq!(tel::parse_trace_id(&text), Some(id));
        assert_eq!(tel::parse_trace_id(&format!("0x{text}")), Some(id));
    }
    assert_eq!(tel::parse_trace_id("0"), None);
    assert_eq!(tel::parse_trace_id("not-hex"), None);
    assert_eq!(tel::parse_trace_id(""), None);
}
