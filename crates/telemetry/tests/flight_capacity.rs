//! The configurable global flight-recorder capacity. Kept alone in its
//! own integration-test binary: configuration must land before the
//! process-global recorder's first use, so no other test in this
//! process may touch telemetry first.

use std::sync::Arc;

use sketchql_telemetry as tel;

#[test]
fn configured_capacity_applies_before_first_use() {
    assert!(
        tel::configure_flight_capacity(8),
        "configuration before first use must take effect"
    );
    assert_eq!(tel::flight_recorder().capacity(), 8);

    // Once the ring is live it cannot be resized.
    assert!(!tel::configure_flight_capacity(16));
    assert_eq!(tel::flight_recorder().capacity(), 8);

    for id in 1..=12u64 {
        tel::flight_recorder().record(Arc::new(tel::QueryTrace {
            trace_id: id,
            label: format!("cap/{id}"),
            outcome: tel::TraceOutcome::Completed,
            batch_size: 1,
            start_nanos: id,
            total_nanos: 1,
            alloc_bytes: 0,
            alloc_count: 0,
            cpu_nanos: 0,
            spans: Vec::new(),
        }));
    }
    let recent = tel::flight_recorder().recent(100);
    assert_eq!(recent.len(), 8, "retention capped at the configured size");
    assert_eq!(recent[0].trace_id, 12, "newest first");
    assert!(
        tel::flight_recorder().find(1).is_none(),
        "oldest traces evicted"
    );
}
