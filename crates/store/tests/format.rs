//! Store binary-format tests: property-based round trips plus targeted
//! rejection of every corruption class the loader must detect.

use proptest::prelude::*;
use sketchql_store::{EmbeddingStore, StoreError, StoreMeta, StoreRow, FORMAT_VERSION, MAGIC};
use sketchql_trajectory::ObjectClass;
use std::path::Path;

fn meta_with(dataset: String, frames: u32, lens: Vec<u32>) -> StoreMeta {
    StoreMeta {
        dataset,
        model_fingerprint: 0x1122_3344_5566_7788,
        index_fingerprint: 0x8877_6655_4433_2211,
        frames,
        fps: 30.0,
        frame_width: 1280.0,
        frame_height: 720.0,
        stride_frac: 0.25,
        min_overlap_frac: 0.5,
        window_lens: lens,
    }
}

/// An arbitrary store: random dataset name, window grid, and rows whose
/// vectors exercise odd float bit patterns (negative zero, subnormals).
fn arb_store() -> impl Strategy<Value = EmbeddingStore> {
    let row = (
        any::<u64>(),
        any::<u8>(),
        0u32..500,
        0u32..100,
        prop::collection::vec(-1.0e3f32..1.0e3, 4..5),
    );
    (
        prop::collection::vec(any::<u8>(), 0..12),
        prop::collection::vec(1u32..200, 1..4),
        prop::collection::vec(row, 0..16),
    )
        .prop_map(|(name_bytes, lens, rows)| {
            let dataset: String = name_bytes
                .iter()
                .map(|&b| char::from(b'a' + b % 26))
                .collect();
            let mut store = EmbeddingStore::new(meta_with(dataset, 600, lens), 4);
            for (id, class_pick, start, span, mut vec) in rows {
                let class = if class_pick == 0 {
                    ObjectClass::Any
                } else {
                    ObjectClass::CONCRETE[class_pick as usize % ObjectClass::CONCRETE.len()]
                };
                // Force interesting bit patterns into the first lanes.
                vec[0] = -0.0;
                vec[1] = f32::MIN_POSITIVE / 2.0; // subnormal
                store.push(
                    StoreRow {
                        track_id: id,
                        class,
                        start,
                        end: start + span,
                    },
                    &vec,
                );
            }
            store
        })
}

proptest! {
    #[test]
    fn round_trip_is_bit_identical(store in arb_store()) {
        let bytes = store.to_bytes();
        let back = EmbeddingStore::from_bytes(Path::new("prop"), &bytes).unwrap();
        prop_assert_eq!(back.meta.clone(), store.meta.clone());
        prop_assert_eq!(back.len(), store.len());
        prop_assert_eq!(back.dim(), store.dim());
        for i in 0..store.len() {
            prop_assert_eq!(back.row(i), store.row(i));
            let a: Vec<u32> = back.vector(i).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = store.vector(i).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn any_truncation_is_detected(store in arb_store(), frac in 0.0f64..1.0) {
        // Cutting the file anywhere strictly before the end must surface
        // as Truncated or ChecksumMismatch — never a silent partial load.
        let bytes = store.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = EmbeddingStore::from_bytes(Path::new("prop"), &bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::BadMagic { .. }),
            "cut at {} of {} gave {:?}", cut, bytes.len(), err
        );
    }
}

fn sample_store() -> EmbeddingStore {
    let mut s = EmbeddingStore::new(meta_with("demo".into(), 300, vec![67, 90]), 3);
    s.push(
        StoreRow {
            track_id: 7,
            class: ObjectClass::Car,
            start: 10,
            end: 99,
        },
        &[0.25, -0.5, 0.125],
    );
    s
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_store().to_bytes();
    bytes[0] ^= 0xff;
    let err = EmbeddingStore::from_bytes(Path::new("m"), &bytes).unwrap_err();
    assert!(matches!(err, StoreError::BadMagic { .. }), "{err:?}");
    assert!(err.to_string().contains("bad magic"), "{err}");
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = sample_store().to_bytes();
    let v = (FORMAT_VERSION + 9).to_le_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v);
    // Keep the checksum honest so the version check is what fires.
    let err = EmbeddingStore::from_bytes(Path::new("v"), &bytes).unwrap_err();
    match err {
        StoreError::UnsupportedVersion { found, .. } => {
            assert_eq!(found, FORMAT_VERSION + 9)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_rejected() {
    let bytes = sample_store().to_bytes();
    let err = EmbeddingStore::from_bytes(Path::new("t"), &bytes[..bytes.len() - 12]).unwrap_err();
    assert!(matches!(err, StoreError::Truncated { .. }), "{err:?}");
    assert!(err.to_string().contains('t'), "{err}");
}

#[test]
fn checksum_mismatch_is_rejected() {
    let mut bytes = sample_store().to_bytes();
    // Flip one bit in the vector column (well past the header, well
    // before the checksum).
    let idx = bytes.len() - 16;
    bytes[idx] ^= 0x01;
    let err = EmbeddingStore::from_bytes(Path::new("c"), &bytes).unwrap_err();
    assert!(
        matches!(err, StoreError::ChecksumMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn unknown_class_code_is_rejected() {
    let store = sample_store();
    let bytes = store.to_bytes();
    // The single class byte sits right after the track-id column; locate
    // it by reconstructing the header length.
    let header = MAGIC.len()
        + 4
        + 8
        + 8
        + 4
        + 4 * 5
        + 4
        + store.meta.dataset.len()
        + 4
        + 4 * store.meta.window_lens.len()
        + 4
        + 4;
    let class_at = header + 8 * store.len();
    let mut bytes = bytes;
    bytes[class_at] = 0xee;
    // Re-stamp the checksum so only the class decode fails.
    let payload = bytes.len() - 8;
    let mut h = sketchql_store::Fnv64::new();
    h.write(&bytes[..payload]);
    let sum = h.finish().to_le_bytes();
    bytes[payload..].copy_from_slice(&sum);
    let err = EmbeddingStore::from_bytes(Path::new("k"), &bytes).unwrap_err();
    match err {
        StoreError::BadClass { code, .. } => assert_eq!(code, 0xee),
        other => panic!("expected BadClass, got {other:?}"),
    }
}

#[test]
fn error_display_names_the_path() {
    let err = EmbeddingStore::load(Path::new("/no/such/dir/x.skstore")).unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }));
    assert!(err.to_string().contains("/no/such/dir/x.skstore"), "{err}");
}
