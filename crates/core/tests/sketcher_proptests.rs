//! Property-based tests: the sketcher stays consistent under arbitrary
//! sequences of user operations, and compiled queries are always valid
//! matcher input.

use proptest::prelude::*;
use sketchql::sketcher::{MouseMode, Sketcher};
use sketchql_trajectory::{ObjectClass, Point2};

/// An abstract user gesture.
#[derive(Debug, Clone)]
enum Op {
    Create(u8, f32, f32),
    Delete(u8),
    Edit(u8, u8),
    Drag(u8, Vec<(f32, f32)>),
    DeleteSegment(u8),
    Stretch(u8, u32),
    Shift(u8, u32),
    Reorder(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let coord = 0.0f32..1000.0;
    prop_oneof![
        (any::<u8>(), coord.clone(), 0.0f32..600.0).prop_map(|(c, x, y)| Op::Create(c, x, y)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Edit(a, b)),
        (
            any::<u8>(),
            prop::collection::vec((coord.clone(), 0.0f32..600.0), 1..8)
        )
            .prop_map(|(o, path)| Op::Drag(o, path)),
        any::<u8>().prop_map(Op::DeleteSegment),
        (any::<u8>(), 1u32..120).prop_map(|(s, t)| Op::Stretch(s, t)),
        (any::<u8>(), 0u32..200).prop_map(|(s, t)| Op::Shift(s, t)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, i)| Op::Reorder(s, i)),
    ]
}

const CLASSES: &[ObjectClass] = &[
    ObjectClass::Car,
    ObjectClass::Person,
    ObjectClass::Truck,
    ObjectClass::Bicycle,
    ObjectClass::Dog,
];

fn apply(sketcher: &mut Sketcher, op: &Op) {
    // Errors (wrong ids, wrong modes) are expected for random ids; the
    // invariant is that nothing panics and state stays coherent.
    match op {
        Op::Create(c, x, y) => {
            sketcher.set_mode(MouseMode::Create);
            let class = CLASSES[*c as usize % CLASSES.len()];
            let _ = sketcher.create_object(class, Point2::new(*x, *y));
        }
        Op::Delete(i) => {
            sketcher.set_mode(MouseMode::Delete);
            let _ = sketcher.delete_object(u64::from(*i) % 8 + 1);
        }
        Op::Edit(i, c) => {
            sketcher.set_mode(MouseMode::Edit);
            let class = CLASSES[*c as usize % CLASSES.len()];
            let _ = sketcher.edit_object_type(u64::from(*i) % 8 + 1, class);
        }
        Op::Drag(i, path) => {
            sketcher.set_mode(MouseMode::Drag);
            let pts: Vec<Point2> = path.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let _ = sketcher.drag_object_along(u64::from(*i) % 8 + 1, &pts);
        }
        Op::DeleteSegment(s) => {
            let _ = sketcher.delete_segment(u64::from(*s) % 12 + 1);
        }
        Op::Stretch(s, t) => {
            let _ = sketcher.stretch_segment(u64::from(*s) % 12 + 1, *t);
        }
        Op::Shift(s, t) => {
            let _ = sketcher.shift_segment(u64::from(*s) % 12 + 1, *t);
        }
        Op::Reorder(s, i) => {
            let _ = sketcher.reorder_segment(u64::from(*s) % 12 + 1, *i as usize % 4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sketcher_survives_arbitrary_gesture_sequences(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut sketcher = Sketcher::demo();
        for op in &ops {
            apply(&mut sketcher, op);
        }
        // Panel lanes only reference live segments of live objects.
        let objects: Vec<u64> = sketcher.objects().map(|o| o.id).collect();
        for obj in sketcher.panel().objects() {
            prop_assert!(objects.contains(&obj), "panel lane for deleted object {obj}");
            for seg in sketcher.panel().lane(obj) {
                let s = sketcher.segment(*seg).expect("lane segment must exist");
                prop_assert_eq!(s.object, obj);
                prop_assert!(s.ticks > 0);
            }
        }
        // Compilation either fails cleanly (empty) or yields a valid clip.
        match sketcher.compile() {
            Ok(clip) => {
                prop_assert!(!clip.is_empty());
                prop_assert!(clip.span() >= 1);
                for t in &clip.objects {
                    let frames: Vec<u32> = t.points().iter().map(|p| p.frame).collect();
                    prop_assert!(frames.windows(2).all(|w| w[0] < w[1]));
                    for p in t.points() {
                        prop_assert!(p.bbox.cx.is_finite() && p.bbox.cy.is_finite());
                    }
                }
            }
            Err(e) => {
                prop_assert_eq!(e, sketchql::SketchError::EmptyQuery);
            }
        }
    }

    #[test]
    fn compiled_queries_are_always_searchable(ops in prop::collection::vec(arb_op(), 1..30)) {
        let mut sketcher = Sketcher::demo();
        for op in &ops {
            apply(&mut sketcher, op);
        }
        if let Ok(clip) = sketcher.compile() {
            if clip.num_objects() <= sketchql_trajectory::MAX_OBJECTS {
                // Feature extraction must accept every compiled query.
                let f = sketchql_trajectory::extract_features(&clip, 16);
                prop_assert!(f.is_ok(), "{f:?}");
            }
        }
    }
}
