#!/usr/bin/env bash
# Server throughput acceptance check: runs the closed-loop server bench
# (1-worker serial baseline vs an 8-worker pool with shared-scan fusion)
# and gates on the speedup and on byte-identical per-query results.
# Writes qps, wall times, fusion width, and the ratio to
# BENCH_server.json and exits non-zero if the speedup falls below
# $SKETCHQL_SERVER_SPEEDUP_MIN (default 3) or any query's moments
# diverged between the two configurations.
#
#   scripts/bench_server.sh                              # full load (240 queries)
#   SKETCHQL_BENCH_QUICK=1 scripts/bench_server.sh       # fast smoke run (64)
#
# On a single-core machine the speedup comes from fusion, not CPU
# parallelism: each worker drains queued same-dataset queries and
# executes them as one Matcher::search_batch call sharing one embedding
# cache (see crates/bench/benches/server.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${SKETCHQL_SERVER_SPEEDUP_MIN:-3}"
OUT_JSON="${SKETCHQL_SERVER_BENCH_JSON:-BENCH_server.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== server bench (1 worker serial vs 8 workers fused, $(nproc) cpu(s))"
cargo bench -p sketchql-bench --bench server | tee "$log"

echo
awk -v min="$MIN_SPEEDUP" -v out="$OUT_JSON" -v quick="${SKETCHQL_BENCH_QUICK:-0}" \
    -v ncpu="$(nproc)" '
    /^BENCH server_throughput\/workers=/ {
        id = $2
        sub(/^server_throughput\/workers=/, "", id)
        for (i = 3; i <= NF; i++) {
            if ($i ~ /^qps=/)       { sub(/^qps=/, "", $i);       qps[id] = $i }
            if ($i ~ /^wall_ms=/)   { sub(/^wall_ms=/, "", $i);   wall[id] = $i }
            if ($i ~ /^avg_batch=/) { sub(/^avg_batch=/, "", $i); batch[id] = $i }
            if ($i ~ /^queries=/)   { sub(/^queries=/, "", $i);   queries = $i }
        }
    }
    /^BENCH server_throughput\/speedup/ {
        for (i = 3; i <= NF; i++)
            if ($i ~ /^identical=/) { sub(/^identical=/, "", $i); identical = $i }
    }
    END {
        if (!("1" in qps) || !("8" in qps) || qps["1"] <= 0) {
            print "missing server_throughput/workers={1,8} qps"
            exit 2
        }
        speedup = qps["8"] / qps["1"]
        printf "1 worker  (serial):       %.2f qps\n", qps["1"]
        printf "8 workers (fused batch):  %.2f qps (avg fusion %.1f queries/scan)\n", \
               qps["8"], batch["8"]
        printf "speedup: %.2fx (bar: >=%sx), identical results: %s\n", \
               speedup, min, (identical == 1) ? "yes" : "NO"
        printf "{\n" \
               "  \"bench\": \"server_throughput\",\n" \
               "  \"quick\": %s,\n" \
               "  \"cpus\": %s,\n" \
               "  \"queries\": %s,\n" \
               "  \"workers1_qps\": %.3f,\n" \
               "  \"workers1_wall_ms\": %s,\n" \
               "  \"workers8_qps\": %.3f,\n" \
               "  \"workers8_wall_ms\": %s,\n" \
               "  \"workers8_avg_batch\": %s,\n" \
               "  \"speedup\": %.3f,\n" \
               "  \"min_speedup\": %s,\n" \
               "  \"identical\": %s\n" \
               "}\n", (quick != 0) ? "true" : "false", ncpu, queries, \
               qps["1"], wall["1"], qps["8"], wall["8"], batch["8"], \
               speedup, min, (identical == 1) ? "true" : "false" > out
        printf "wrote %s\n", out
        if (identical != 1) exit 3
        exit (speedup >= min + 0.0) ? 0 : 1
    }
' "$log"
