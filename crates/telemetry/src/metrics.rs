//! Atomic counters, gauges, and fixed-bucket histograms in a global
//! named registry.
//!
//! Handles returned by [`counter`] / [`gauge`] / [`histogram`] are
//! `&'static`: the registry leaks each metric once on first registration
//! so lookups (which take a mutex) can be hoisted out of hot loops while
//! updates stay single relaxed atomic operations.

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};

/// Monotonically increasing event count.
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count (0 when telemetry is disabled).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A value that can go up and down, stored as an `f64`.
pub struct Gauge {
    #[cfg(feature = "enabled")]
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading 0.
    pub const fn new() -> Self {
        Gauge {
            #[cfg(feature = "enabled")]
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current reading (0.0 when telemetry is disabled; note a gauge
    /// explicitly `set` to 0.0 reads back as `f64::to_bits(0.0)` too).
    pub fn get(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0.0
        }
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Fixed-bucket histogram of `f64` observations.
///
/// Buckets are upper-bound style, as in Prometheus: an observation lands
/// in the first bucket whose bound is `>=` the value, or in the implicit
/// `+Inf` bucket past the last bound.
pub struct Histogram {
    #[cfg(feature = "enabled")]
    bounds: Vec<f64>,
    #[cfg(feature = "enabled")]
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (last is +Inf)
    #[cfg(feature = "enabled")]
    sum_bits: AtomicU64,
    #[cfg(feature = "enabled")]
    count: AtomicU64,
}

impl Histogram {
    #[cfg(feature = "enabled")]
    fn with_bounds(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        #[cfg(feature = "enabled")]
        {
            let idx = self
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(self.bounds.len());
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            // f64 sum via CAS on the bit pattern.
            let _ = self
                .sum_bits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                    Some((f64::from_bits(bits) + v).to_bits())
                });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Number of observations (0 when telemetry is disabled).
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Sum of observations (0.0 when telemetry is disabled).
    pub fn sum(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0.0
        }
    }

    /// Cumulative bucket counts as `(upper_bound, count)` pairs; the final
    /// pair has bound `f64::INFINITY`. Empty when telemetry is disabled.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        #[cfg(feature = "enabled")]
        {
            let mut acc = 0;
            let mut out = Vec::with_capacity(self.buckets.len());
            for (i, b) in self.buckets.iter().enumerate() {
                acc += b.load(Ordering::Relaxed);
                let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                out.push((bound, acc));
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "enabled")]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Returns the named counter, registering it on first use.
pub fn counter(name: &str) -> &'static Counter {
    #[cfg(feature = "enabled")]
    {
        let mut map = registry().counters.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        static NOOP: Counter = Counter::new();
        &NOOP
    }
}

/// Returns the named gauge, registering it on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    #[cfg(feature = "enabled")]
    {
        let mut map = registry().gauges.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        static NOOP: Gauge = Gauge::new();
        &NOOP
    }
}

/// Returns the named histogram, registering it with `bounds` on first
/// use (later calls keep the original bounds).
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    #[cfg(feature = "enabled")]
    {
        let mut map = registry().histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Histogram::with_bounds(bounds))))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, bounds);
        static NOOP: Histogram = Histogram {};
        &NOOP
    }
}

/// Zeroes every registered metric. Intended for tests and benchmarks.
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        let reg = registry();
        for c in reg.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in reg.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in reg.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge readings by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Cumulative `(upper_bound, count)` pairs, ending with `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl MetricsSnapshot {
    /// Captures the current registry state (empty when disabled).
    pub fn capture() -> Self {
        #[cfg(feature = "enabled")]
        {
            let reg = registry();
            MetricsSnapshot {
                counters: reg
                    .counters
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                gauges: reg
                    .gauges
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                histograms: reg
                    .histograms
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| {
                        (
                            k.clone(),
                            HistogramSnapshot {
                                buckets: v.cumulative_buckets(),
                                sum: v.sum(),
                                count: v.count(),
                            },
                        )
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            MetricsSnapshot::default()
        }
    }
}
