//! The sharded, memory-mapped store tier: parallel per-shard ingest,
//! lazy shard loading, and the shard-fan-out search path.
//!
//! A monolithic `.skstore` holds one dataset in one file, fully loaded
//! (and checksummed, and ANN-indexed) before the first query. This
//! module splits the same rows into **frame-range shards** — shard `i`
//! owns every sliding window whose *start frame* falls in
//! `[i·shard_frames, (i+1)·shard_frames)` — written as independent
//! [`ShardData`] files plus one [`Manifest`] carrying the dataset
//! provenance, the shared coarse-quantizer centroids, and per-shard
//! row-per-centroid counts.
//!
//! Three properties the tier guarantees:
//!
//! - **Grid fidelity.** The union of all shards' window rows equals the
//!   monolithic ingest's rows exactly — no duplicates, no gaps. Boundary
//!   windows (spanning a shard edge) belong to the shard owning their
//!   start frame, and the per-shard enumeration replays the matcher's
//!   global grid restricted to that start range (see
//!   [`enumerate_store_rows`]).
//! - **Bit-identical scores.** Probing ranks the *shared* quantizer's
//!   centroids once per query (the exact ranking `IvfIndex::probe`
//!   applies), gathers candidates from the top shards, and re-ranks them
//!   with the same `score_embedding` the scan uses. Scores can never
//!   differ from the monolithic path or the scan; probing fewer lists
//!   only omits windows.
//! - **Lazy residency.** Attaching a [`ShardSet`] reads the manifest and
//!   each shard's 64-byte header. Shard payloads are memory-mapped,
//!   checksummed, and decoded on *first probe* — and a shard whose
//!   manifest row counts are zero under every probed centroid is never
//!   touched at all. Resident memory follows traffic, not corpus size.

use sketchql_store::{
    hex_u64, read_shard_header, AnnConfig, CoarseQuantizer, LoadedShard, Manifest, ManifestShard,
    ShardData, StoreError, StoreHeader, StoreMeta, StoreRow, MANIFEST_FILE, SHARD_SET_EXT,
};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{Clip, Trajectory};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cancel::CancelToken;
use crate::embed_cache::embed_clips_parallel;
use crate::index::VideoIndex;
use crate::matcher::{window_clip, MatchError, Matcher};
use crate::similarity::{LearnedSimilarity, PreparedQuery, Similarity};
use crate::vstore::{
    self, index_fingerprint, model_fingerprint, track_overlaps, DatasetStore, IngestConfig,
    StoreSearch,
};

/// Upper bound on the vectors sampled to train the shared quantizer.
/// Sampling is deterministic (every k-th vector in shard-major order),
/// so the same corpus always trains the same centroids.
const QUANTIZER_SAMPLE_MAX: usize = 4096;

/// Process-wide residency accounting backing the `sketchql.shard.*`
/// gauges (gauges are set-valued, so the running totals live here).
static RESIDENT_SHARDS: AtomicI64 = AtomicI64::new(0);
static MAPPED_BYTES: AtomicI64 = AtomicI64::new(0);

fn publish_residency() {
    telemetry::gauge(names::SHARD_RESIDENT).set(RESIDENT_SHARDS.load(Ordering::Relaxed) as f64);
    telemetry::gauge(names::SHARD_BYTES_MAPPED).set(MAPPED_BYTES.load(Ordering::Relaxed) as f64);
}

/// Enumerates the store rows of the matcher's sliding-window grid,
/// optionally restricted to windows whose start frame lies in
/// `start_range` (inclusive). `None` replays the exact monolithic
/// [`vstore::ingest`] enumeration; `Some((lo, hi))` is the shard-local
/// grid, and because every window's start belongs to exactly one shard,
/// partitioning the frame axis partitions the rows: the union over
/// disjoint covering ranges equals the unrestricted enumeration, row
/// for row.
///
/// Returns the rows plus the matching window clips (the embedder's
/// input), in enumeration order.
pub fn enumerate_store_rows(
    index: &VideoIndex,
    config: &IngestConfig,
    start_range: Option<(u32, u32)>,
) -> (Vec<StoreRow>, Vec<Clip>) {
    let mut lens = config.window_lens.clone();
    lens.sort_unstable();
    lens.dedup();
    let (lo, hi) = match start_range {
        Some((lo, hi)) => (lo, hi),
        None => (0, u32::MAX),
    };

    let mut rows: Vec<StoreRow> = Vec::new();
    let mut clips: Vec<Clip> = Vec::new();
    let mut seen: HashSet<(sketchql_trajectory::TrackId, u32, u32)> = HashSet::new();
    for &window in &lens {
        if window == 0 || window > index.frames {
            continue;
        }
        let stride = ((window as f32 * config.stride_frac) as u32).max(1);
        let min_overlap = ((window as f32 * config.min_overlap_frac) as u32).max(1);
        // The global grid starts at 0 and stops at the first start whose
        // (clamped) window reaches the end of the video. Jump to the
        // first grid point inside the range; stop at the earlier of the
        // range end and the global stop.
        let global_last = if window >= index.frames {
            0
        } else {
            (index.frames - window).div_ceil(stride) * stride
        };
        let mut start = lo.div_ceil(stride).saturating_mul(stride);
        while start <= hi.min(global_last) {
            let end = (start + window - 1).min(index.frames.saturating_sub(1));
            for t in &index.tracks {
                if !track_overlaps(t, start, end, min_overlap) || seen.contains(&(t.id, start, end))
                {
                    continue;
                }
                let slot: Vec<Vec<&Trajectory>> = vec![vec![t]];
                let clip = window_clip(index, &[0], &slot, start, end);
                if clip.is_empty() {
                    continue;
                }
                seen.insert((t.id, start, end));
                rows.push(StoreRow {
                    track_id: t.id,
                    class: t.class,
                    start,
                    end,
                });
                clips.push(clip);
            }
            match start.checked_add(stride) {
                Some(next) => start = next,
                None => break,
            }
        }
    }
    (rows, clips)
}

/// Progress events emitted by [`ingest_sharded`]. The callback may be
/// invoked from worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestProgress {
    /// Window enumeration finished: the total work is known.
    Enumerated {
        /// Windows to embed across all shards.
        windows: usize,
        /// Shards that will be written.
        shards: usize,
    },
    /// One shard's windows are embedded.
    ShardEmbedded {
        /// The shard that finished.
        shard_id: u32,
        /// Windows embedded so far, across all shards.
        done: usize,
        /// Total windows to embed.
        total: usize,
    },
    /// One shard file hit the disk.
    ShardWritten {
        /// The shard that was written.
        shard_id: u32,
        /// Rows in the shard.
        rows: usize,
    },
}

/// One shard's embedding output: `None` until its worker finishes,
/// then one optional vector per enumerated row.
type EmbeddedShard = Option<Vec<Option<Vec<f32>>>>;

/// Builds a sharded store on disk: enumerates and embeds each shard's
/// windows on a pool of `config.threads` workers, trains the shared
/// coarse quantizer over a deterministic sample, writes one
/// `.skshard` per shard plus the manifest into `dir`, and returns the
/// freshly opened (cold, nothing resident) [`ShardSet`].
///
/// `shard_frames` is the frame-range width each shard owns; the last
/// shard takes the remainder. Embeddings, the quantizer, and the row
/// partition are all deterministic, so the same inputs always produce
/// the same set, and the rows across all shards are exactly the rows
/// [`vstore::ingest`] would persist monolithically.
pub fn ingest_sharded(
    sim: &LearnedSimilarity,
    index: &VideoIndex,
    dataset: &str,
    config: &IngestConfig,
    shard_frames: u32,
    dir: &Path,
    progress: &(dyn Fn(IngestProgress) + Sync),
) -> Result<ShardSet, StoreError> {
    let _span = telemetry::span(names::STORE_BUILD);
    let shard_frames = shard_frames.max(1);
    let shard_count = if index.frames == 0 {
        1
    } else {
        index.frames.div_ceil(shard_frames) as usize
    };

    // Phase 1: enumerate every shard's rows (cheap — no embedding).
    let ranges: Vec<(u32, u32)> = (0..shard_count as u32)
        .map(|i| {
            let lo = i * shard_frames;
            let hi = ((i + 1) * shard_frames - 1).min(index.frames.saturating_sub(1));
            (lo, hi)
        })
        .collect();
    let enumerated: Vec<(Vec<StoreRow>, Vec<Clip>)> = ranges
        .iter()
        .map(|&range| enumerate_store_rows(index, config, Some(range)))
        .collect();
    let total_windows: usize = enumerated.iter().map(|(rows, _)| rows.len()).sum();
    progress(IngestProgress::Enumerated {
        windows: total_windows,
        shards: shard_count,
    });

    // Phase 2: embed shard by shard across the worker pool. Each worker
    // claims the next shard; embedding a clip is independent of its
    // batch, so the vectors are bit-identical to a monolithic ingest.
    let threads = config.threads.max(1).min(shard_count.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut embedded: Vec<EmbeddedShard> = Vec::new();
    embedded.resize_with(shard_count, || None);
    let slots: Vec<std::sync::Mutex<&mut EmbeddedShard>> =
        embedded.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shard_count {
                    break;
                }
                let (rows, clips) = &enumerated[i];
                let vectors = embed_clips_parallel(sim, clips, 1);
                **slots[i].lock().unwrap() = Some(vectors);
                let so_far = done.fetch_add(rows.len(), Ordering::Relaxed) + rows.len();
                progress(IngestProgress::ShardEmbedded {
                    shard_id: i as u32,
                    done: so_far,
                    total: total_windows,
                });
            });
        }
    });
    drop(slots);

    // Materialize per-shard row + vector columns (dropping the rare
    // unembeddable segment, as monolithic ingest does).
    let dim = embedded
        .iter()
        .flatten()
        .flatten()
        .flatten()
        .next()
        .map_or(sim.encoder.config.embed_dim, Vec::len);
    let mut shard_rows: Vec<Vec<StoreRow>> = Vec::with_capacity(shard_count);
    let mut shard_vecs: Vec<Vec<f32>> = Vec::with_capacity(shard_count);
    for (i, (rows, _)) in enumerated.into_iter().enumerate() {
        let vectors = embedded[i].take().expect("every shard embeds");
        let mut keep_rows = Vec::with_capacity(rows.len());
        let mut keep_vecs = Vec::with_capacity(rows.len() * dim);
        for (row, v) in rows.into_iter().zip(vectors) {
            if let Some(v) = v {
                keep_rows.push(row);
                keep_vecs.extend_from_slice(&v);
            }
        }
        shard_rows.push(keep_rows);
        shard_vecs.push(keep_vecs);
    }
    let total_rows: usize = shard_rows.iter().map(Vec::len).sum();
    telemetry::counter(names::STORE_VECTORS).add(total_rows as u64);

    // Phase 3: train the shared quantizer over a deterministic sample
    // (every k-th vector, shard-major order), sized by the full corpus.
    let step = total_rows.div_ceil(QUANTIZER_SAMPLE_MAX).max(1);
    let mut sample: Vec<f32> = Vec::new();
    let mut sampled = 0usize;
    for (vecs, rows) in shard_vecs.iter().zip(&shard_rows) {
        for r in 0..rows.len() {
            let global = sampled + r;
            if global.is_multiple_of(step) {
                sample.extend_from_slice(&vecs[r * dim..(r + 1) * dim]);
            }
        }
        sampled += rows.len();
    }
    let sample_n = sample.len() / dim.max(1);
    let nlist = if config.ann.nlist == 0 {
        (total_rows as f64).sqrt().ceil() as usize
    } else {
        config.ann.nlist
    }
    .clamp(1, sample_n.max(1));
    let quantizer = CoarseQuantizer::train(
        &sample,
        if sample.is_empty() { 0 } else { dim },
        &AnnConfig {
            nlist,
            ..config.ann
        },
    );
    let nlist = quantizer.nlist();

    // Phase 4: assign rows to the shared centroids and write each shard
    // plus the manifest.
    std::fs::create_dir_all(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut entries: Vec<ManifestShard> = Vec::with_capacity(shard_count);
    for (i, (rows, vecs)) in shard_rows.into_iter().zip(shard_vecs).enumerate() {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        if nlist > 0 {
            for r in 0..rows.len() {
                lists[quantizer.assign(&vecs[r * dim..(r + 1) * dim])].push(r as u32);
            }
        }
        let file = format!("shard-{i:04}.skshard");
        let data = ShardData {
            shard_id: i as u32,
            frame_start: ranges[i].0,
            frame_end: ranges[i].1,
            dim,
            rows,
            vectors: vecs,
            lists,
        };
        let checksum = data.save(&dir.join(&file))?;
        progress(IngestProgress::ShardWritten {
            shard_id: i as u32,
            rows: data.rows.len(),
        });
        entries.push(ManifestShard {
            file,
            shard_id: i as u32,
            frame_start: ranges[i].0,
            frame_end: ranges[i].1,
            rows: data.rows.len() as u32,
            checksum: hex_u64(checksum),
            list_rows: data.lists.iter().map(|l| l.len() as u32).collect(),
        });
    }

    let mut lens = config.window_lens.clone();
    lens.sort_unstable();
    lens.dedup();
    let manifest = Manifest {
        version: sketchql_store::MANIFEST_VERSION,
        epoch: 0,
        dataset: dataset.to_string(),
        model_fingerprint: hex_u64(model_fingerprint(sim)),
        index_fingerprint: hex_u64(index_fingerprint(index)),
        frames: index.frames,
        fps_bits: index.fps.to_bits(),
        frame_width_bits: index.frame_width.to_bits(),
        frame_height_bits: index.frame_height.to_bits(),
        stride_frac_bits: config.stride_frac.to_bits(),
        min_overlap_frac_bits: config.min_overlap_frac.to_bits(),
        window_lens: lens,
        dim: dim as u32,
        shard_frames,
        nlist: nlist as u32,
        centroid_bits: quantizer.centroids().iter().map(|c| c.to_bits()).collect(),
        shards: entries,
    };
    manifest.save(dir)?;
    ShardSet::open(dir)
}

/// What one committed [`append_frames`] did.
pub struct AppendOutcome {
    /// The freshly reopened set (cold, nothing resident).
    pub set: ShardSet,
    /// The epoch the commit advanced the manifest to (unchanged if the
    /// call was a no-op).
    pub epoch: u64,
    /// Frames the set covered before the append.
    pub old_frames: u32,
    /// Frames the set covers now.
    pub new_frames: u32,
    /// Windows embedded fresh (touched by the new frames).
    pub embedded_rows: usize,
    /// Windows copied verbatim from the previous epoch's shards.
    pub reused_rows: usize,
    /// Shards rewritten (the dirty suffix; untouched shards keep their
    /// files byte-for-byte).
    pub rewritten_shards: usize,
}

/// Incrementally extends an existing shard set to cover `index`, which
/// must be the *same* video with frames appended (pure extension: every
/// pre-existing frame's detections are unchanged). Only windows whose
/// frame span touches the new frames are embedded; everything else is
/// copied from the previous epoch's shards, so the cost scales with the
/// appended span, not the corpus.
///
/// Because shard `i` owns windows by *start frame*, a window can only
/// change if its start is at least `old_frames - (wmax - 1)` (`wmax` =
/// the longest configured window): anything starting earlier ended
/// before the old tail and is untouched by construction. The rewrite
/// therefore begins at the shard owning that start (never later than
/// the old tail shard, whose frame range itself grows) and re-runs the
/// exact from-scratch enumeration for the rewritten ranges — the
/// resulting row/vector columns are byte-identical to a full re-ingest.
/// New rows are assigned to the **existing** shared quantizer
/// (list-append; centroids are never retrained), so query results are
/// bit-identical to a from-scratch ingest under exact re-rank even
/// though the coarse lists may differ.
///
/// Commit is atomic: rewritten shards land under epoch-suffixed names
/// (current-epoch files are never overwritten), then one
/// `manifest.json` rename publishes the new epoch. A reader holding the
/// old manifest keeps a complete old-epoch set; a crash before the
/// rename leaves the old epoch intact (orphaned new-epoch files are
/// garbage-collected by the next append).
///
/// `threads` sizes the embedding worker pool. Re-calling with an index
/// the set already covers is a no-op (same epoch returned).
pub fn append_frames(
    sim: &LearnedSimilarity,
    index: &VideoIndex,
    dir: &Path,
    threads: usize,
    progress: &(dyn Fn(IngestProgress) + Sync),
) -> Result<AppendOutcome, StoreError> {
    let _span = telemetry::span(names::LIVE_APPEND);
    let manifest = Manifest::load(dir)?;
    let bad = |detail: String| StoreError::BadHeader {
        path: dir.join(MANIFEST_FILE),
        detail,
    };
    if manifest.model_fp() != Some(model_fingerprint(sim)) {
        return Err(bad("append with a different model than ingest".into()));
    }
    if index.fps.to_bits() != manifest.fps_bits
        || index.frame_width.to_bits() != manifest.frame_width_bits
        || index.frame_height.to_bits() != manifest.frame_height_bits
    {
        return Err(bad("append index disagrees with ingest provenance".into()));
    }
    let old_frames = manifest.frames;
    if index.frames < old_frames {
        return Err(bad(format!(
            "append cannot shrink the video: set covers {old_frames} frames, index has {}",
            index.frames
        )));
    }
    if index.frames == old_frames {
        if manifest.index_fp() == Some(index_fingerprint(index)) {
            let epoch = manifest.epoch;
            return Ok(AppendOutcome {
                set: ShardSet::open(dir)?,
                epoch,
                old_frames,
                new_frames: old_frames,
                embedded_rows: 0,
                reused_rows: 0,
                rewritten_shards: 0,
            });
        }
        return Err(bad(
            "append with same frame count but different contents (history rewritten?)".into(),
        ));
    }

    // Garbage-collect shard files a crashed previous append left behind
    // (anything with the shard extension the manifest doesn't claim).
    let referenced: HashSet<&str> = manifest.shards.iter().map(|s| s.file.as_str()).collect();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let is_shard = path.extension().is_some_and(|x| x == "skshard");
            let name = entry.file_name();
            if is_shard && !referenced.contains(name.to_str().unwrap_or_default()) {
                std::fs::remove_file(&path).ok();
            }
        }
    }

    // Rebuild the exact ingest grid configuration from the manifest.
    let config = IngestConfig {
        window_lens: manifest.window_lens.clone(),
        stride_frac: f32::from_bits(manifest.stride_frac_bits),
        min_overlap_frac: f32::from_bits(manifest.min_overlap_frac_bits),
        threads,
        ann: AnnConfig::default(), // unused: the quantizer is never retrained
    };
    let shard_frames = manifest.shard_frames.max(1);
    let wmax = manifest.window_lens.iter().copied().max().unwrap_or(1);
    // First start frame whose window could touch the new frames. Every
    // row starting earlier is unchanged by a pure extension.
    let dirty_lo = old_frames.saturating_sub(wmax.saturating_sub(1));
    let old_count = manifest.shards.len();
    // The old tail shard always rewrites: its owned frame range itself
    // extends when the video grows past it.
    let d_first = ((dirty_lo / shard_frames) as usize).min(old_count.saturating_sub(1));
    let new_count = if index.frames == 0 {
        1
    } else {
        index.frames.div_ceil(shard_frames) as usize
    };

    // Harvest reusable vectors from the shards about to be rewritten:
    // rows untouched by the new frames keep their embeddings verbatim.
    let mut reuse: HashMap<(sketchql_trajectory::TrackId, u32, u32), Vec<f32>> = HashMap::new();
    let dim = manifest.dim as usize;
    for entry in &manifest.shards[d_first..] {
        let checksum = sketchql_store::manifest::parse_hex_u64(&entry.checksum)
            .ok_or_else(|| bad(format!("shard {} checksum is not hex", entry.shard_id)))?;
        let shard = LoadedShard::open(&dir.join(&entry.file), Some(checksum))?;
        for r in 0..entry.rows as usize {
            let row = shard.row(r);
            reuse.insert((row.track_id, row.start, row.end), shard.vector(r).to_vec());
        }
    }

    // Enumerate the rewritten ranges with the exact from-scratch grid.
    let ranges: Vec<(u32, u32)> = (d_first..new_count)
        .map(|i| {
            let lo = i as u32 * shard_frames;
            let hi = ((i as u32 + 1) * shard_frames - 1).min(index.frames.saturating_sub(1));
            (lo, hi)
        })
        .collect();
    let enumerated: Vec<(Vec<StoreRow>, Vec<Clip>)> = ranges
        .iter()
        .map(|&range| enumerate_store_rows(index, &config, Some(range)))
        .collect();
    let rewrite_count = enumerated.len();
    let total_fresh: usize = enumerated
        .iter()
        .flat_map(|(rows, _)| rows.iter())
        .filter(|row| !reuse.contains_key(&(row.track_id, row.start, row.end)))
        .count();
    progress(IngestProgress::Enumerated {
        windows: total_fresh,
        shards: rewrite_count,
    });

    // Embed only the fresh windows, shard by shard across the pool —
    // the same per-clip embedding a from-scratch ingest runs, so the
    // vectors are bit-identical.
    let pool = threads.max(1).min(rewrite_count.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut embedded: Vec<EmbeddedShard> = Vec::new();
    embedded.resize_with(rewrite_count, || None);
    let slots: Vec<std::sync::Mutex<&mut EmbeddedShard>> =
        embedded.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= rewrite_count {
                    break;
                }
                let (rows, clips) = &enumerated[i];
                let fresh: Vec<Clip> = rows
                    .iter()
                    .zip(clips)
                    .filter(|(row, _)| !reuse.contains_key(&(row.track_id, row.start, row.end)))
                    .map(|(_, clip)| clip.clone())
                    .collect();
                let n_fresh = fresh.len();
                let vectors = embed_clips_parallel(sim, &fresh, 1);
                **slots[i].lock().unwrap() = Some(vectors);
                let so_far = done.fetch_add(n_fresh, Ordering::Relaxed) + n_fresh;
                progress(IngestProgress::ShardEmbedded {
                    shard_id: (d_first + i) as u32,
                    done: so_far,
                    total: total_fresh,
                });
            });
        }
    });
    drop(slots);

    // Assemble each rewritten shard in enumeration order, splicing
    // reused vectors back in (and dropping unembeddable rows, exactly
    // as from-scratch ingest does).
    let quantizer = CoarseQuantizer::from_centroids(manifest.centroids(), dim);
    let nlist = manifest.nlist as usize;
    let epoch = manifest.epoch + 1;
    let mut entries: Vec<ManifestShard> = manifest.shards[..d_first].to_vec();
    let mut embedded_rows = 0usize;
    let mut reused_rows = 0usize;
    for (j, (rows, _)) in enumerated.into_iter().enumerate() {
        let i = d_first + j;
        let vectors = embedded[j].take().expect("every shard embeds");
        let mut fresh_iter = vectors.into_iter();
        let mut keep_rows = Vec::with_capacity(rows.len());
        let mut keep_vecs: Vec<f32> = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if let Some(v) = reuse.get(&(row.track_id, row.start, row.end)) {
                reused_rows += 1;
                keep_rows.push(row);
                keep_vecs.extend_from_slice(v);
            } else if let Some(v) = fresh_iter.next().expect("one embedding per fresh row") {
                embedded_rows += 1;
                keep_rows.push(row);
                keep_vecs.extend_from_slice(&v);
            }
        }
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        if nlist > 0 {
            for r in 0..keep_rows.len() {
                lists[quantizer.assign(&keep_vecs[r * dim..(r + 1) * dim])].push(r as u32);
            }
        }
        let file = format!("shard-{i:04}-e{epoch:04}.skshard");
        let data = ShardData {
            shard_id: i as u32,
            frame_start: ranges[j].0,
            frame_end: ranges[j].1,
            dim,
            rows: keep_rows,
            vectors: keep_vecs,
            lists,
        };
        let checksum = data.save(&dir.join(&file))?;
        progress(IngestProgress::ShardWritten {
            shard_id: i as u32,
            rows: data.rows.len(),
        });
        entries.push(ManifestShard {
            file,
            shard_id: i as u32,
            frame_start: ranges[j].0,
            frame_end: ranges[j].1,
            rows: data.rows.len() as u32,
            checksum: hex_u64(checksum),
            list_rows: data.lists.iter().map(|l| l.len() as u32).collect(),
        });
    }
    telemetry::counter(names::STORE_VECTORS).add(embedded_rows as u64);

    // The atomic commit: one manifest rename publishes the new epoch.
    let new_manifest = Manifest {
        epoch,
        frames: index.frames,
        index_fingerprint: hex_u64(index_fingerprint(index)),
        shards: entries,
        ..manifest
    };
    new_manifest.save(dir)?;
    telemetry::counter(names::LIVE_APPENDS).inc();
    telemetry::counter(names::LIVE_ROWS_APPENDED).add(embedded_rows as u64);
    telemetry::counter(names::LIVE_ROWS_REUSED).add(reused_rows as u64);
    Ok(AppendOutcome {
        set: ShardSet::open(dir)?,
        epoch,
        old_frames,
        new_frames: index.frames,
        embedded_rows,
        reused_rows,
        rewritten_shards: rewrite_count,
    })
}

/// One shard's residency slot. `loaded` is the cached payload (shared
/// with in-flight probes through the `Arc`, so eviction can never
/// invalidate a gather in progress), `error` is the sticky load
/// failure, and `last_used` orders slots for LRU eviction.
struct ShardSlot {
    loaded: Option<Arc<LoadedShard>>,
    error: Option<Arc<StoreError>>,
    last_used: u64,
}

/// One shard's attach-time state: validated header + path, with the
/// payload faulted in on first probe (and possibly evicted again under
/// a residency cap).
struct LazyShard {
    path: PathBuf,
    checksum: u64,
    slot: Mutex<ShardSlot>,
}

impl LazyShard {
    fn new(path: PathBuf, checksum: u64) -> Self {
        LazyShard {
            path,
            checksum,
            slot: Mutex::new(ShardSlot {
                loaded: None,
                error: None,
                last_used: 0,
            }),
        }
    }
}

/// The candidate rows gathered by one probe, owning `Arc` handles to
/// every shard they came from. Eviction only drops the set's cached
/// handle; the vectors behind a `Gathered` stay mapped until it drops,
/// so candidate slices can never dangle mid-search.
pub struct Gathered {
    shards: Vec<Arc<LoadedShard>>,
    rows: Vec<(StoreRow, u32, u32)>,
}

impl Gathered {
    /// Number of candidate rows gathered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the probe gathered nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The candidates as `(row, vector)` pairs borrowing from the held
    /// shards — the shape the exact re-rank consumes.
    pub fn candidates(&self) -> Vec<(StoreRow, &[f32])> {
        self.rows
            .iter()
            .map(|&(row, shard, r)| (row, self.shards[shard as usize].vector(r as usize)))
            .collect()
    }
}

/// An attached sharded store: manifest + shared quantizer resident,
/// shard payloads lazy. The monolithic counterpart is
/// [`DatasetStore`]; queries treat both through the common candidate
/// pipeline, so results are bit-identical across tiers.
pub struct ShardSet {
    dir: PathBuf,
    manifest: Manifest,
    meta: StoreMeta,
    quantizer: CoarseQuantizer,
    /// How many shared-quantizer lists a query probes (defaults to
    /// [`AnnConfig::nprobe`]; at `nlist` the probe is exhaustive).
    pub nprobe: usize,
    /// Residency cap: at most this many shards stay loaded at once
    /// (`None` = unbounded, the historical grow-only behaviour). When a
    /// load would exceed the cap, the least-recently-used resident
    /// shard is evicted — dropped from the cache, not from disk — and
    /// reloads transparently on its next probe.
    max_resident: Option<usize>,
    /// Monotonic use clock ordering slots for LRU eviction.
    use_tick: AtomicU64,
    shards: Vec<LazyShard>,
}

impl ShardSet {
    /// Attaches a shard-set directory: parses + validates the manifest,
    /// validates every shard's header (magic, version, length) and its
    /// consistency with the manifest entry, and rebuilds the shared
    /// quantizer from the persisted centroid bits. No shard payload is
    /// read — attach cost is O(manifest + one header per shard).
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let manifest = Manifest::load(dir)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let path = dir.join(&entry.file);
            let header = read_shard_header(&path)?;
            let consistent = header.shard_id == entry.shard_id
                && header.frame_start == entry.frame_start
                && header.frame_end == entry.frame_end
                && header.rows == entry.rows
                && header.dim == manifest.dim
                && header.nlist == manifest.nlist;
            if !consistent {
                return Err(StoreError::BadHeader {
                    path,
                    detail: format!(
                        "shard header disagrees with manifest entry {} (header: id {} frames \
                         {}..={} rows {} dim {} nlist {})",
                        entry.shard_id,
                        header.shard_id,
                        header.frame_start,
                        header.frame_end,
                        header.rows,
                        header.dim,
                        header.nlist
                    ),
                });
            }
            let checksum = sketchql_store::manifest::parse_hex_u64(&entry.checksum)
                .expect("manifest validation checked checksum hex");
            shards.push(LazyShard::new(path, checksum));
        }
        let meta = StoreMeta {
            dataset: manifest.dataset.clone(),
            model_fingerprint: manifest.model_fp().expect("validated hex"),
            index_fingerprint: manifest.index_fp().expect("validated hex"),
            frames: manifest.frames,
            fps: f32::from_bits(manifest.fps_bits),
            frame_width: f32::from_bits(manifest.frame_width_bits),
            frame_height: f32::from_bits(manifest.frame_height_bits),
            stride_frac: f32::from_bits(manifest.stride_frac_bits),
            min_overlap_frac: f32::from_bits(manifest.min_overlap_frac_bits),
            window_lens: manifest.window_lens.clone(),
        };
        let quantizer =
            CoarseQuantizer::from_centroids(manifest.centroids(), manifest.dim as usize);
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            manifest,
            meta,
            quantizer,
            nprobe: AnnConfig::default().nprobe,
            max_resident: None,
            use_tick: AtomicU64::new(0),
            shards,
        })
    }

    /// Caps how many shards stay resident at once (LRU eviction beyond
    /// the cap; `None` removes the cap). A cap of 0 is treated as 1 —
    /// the shard being probed is always allowed to stay.
    pub fn set_max_resident(&mut self, cap: Option<usize>) {
        self.max_resident = cap.map(|c| c.max(1));
        if self.max_resident.is_some() {
            self.evict_over_cap(None);
        }
    }

    /// The configured residency cap, if any.
    pub fn max_resident(&self) -> Option<usize> {
        self.max_resident
    }

    /// The directory this set was attached from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest, as attached.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Dataset provenance, reconstructed bit-exactly from the manifest.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Dataset name recorded at ingest.
    pub fn dataset(&self) -> &str {
        &self.meta.dataset
    }

    /// Number of shards in the set.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared-quantizer lists.
    pub fn nlist(&self) -> usize {
        self.quantizer.nlist()
    }

    /// Total rows across all shards (from the manifest — no loads).
    pub fn total_rows(&self) -> u64 {
        self.manifest.total_rows()
    }

    /// The shared coarse quantizer.
    pub fn quantizer(&self) -> &CoarseQuantizer {
        &self.quantizer
    }

    /// Shards currently faulted in (loaded successfully).
    pub fn resident_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.slot.lock().unwrap().loaded.is_some())
            .count()
    }

    /// The loaded payload of shard `i`, faulting it in (map, checksum,
    /// decode) if evicted or never touched. Load errors are sticky.
    /// A successful load that pushes residency past the cap evicts the
    /// least-recently-used *other* shard before returning.
    fn load_shard(&self, i: usize) -> Result<Arc<LoadedShard>, Arc<StoreError>> {
        let lazy = &self.shards[i];
        let tick = self.use_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let result = {
            let mut slot = lazy.slot.lock().unwrap();
            slot.last_used = tick;
            if let Some(shard) = &slot.loaded {
                return Ok(Arc::clone(shard));
            }
            if let Some(err) = &slot.error {
                return Err(Arc::clone(err));
            }
            let _span = telemetry::span(names::SHARD_LOAD);
            match LoadedShard::open(&lazy.path, Some(lazy.checksum)) {
                Ok(shard) => {
                    let shard = Arc::new(shard);
                    telemetry::counter(names::SHARD_LOADS).inc();
                    RESIDENT_SHARDS.fetch_add(1, Ordering::Relaxed);
                    if shard.is_mapped() {
                        MAPPED_BYTES.fetch_add(shard.bytes() as i64, Ordering::Relaxed);
                    }
                    publish_residency();
                    slot.loaded = Some(Arc::clone(&shard));
                    Ok(shard)
                }
                Err(e) => {
                    telemetry::counter(names::SHARD_LOAD_ERRORS).inc();
                    let err = Arc::new(e);
                    slot.error = Some(Arc::clone(&err));
                    Err(err)
                }
            }
        };
        if result.is_ok() {
            self.evict_over_cap(Some(i));
        }
        result
    }

    /// Evicts least-recently-used shards until residency fits the cap.
    /// `keep` (the shard a probe is actively using) is never evicted.
    /// In-flight gathers keep their `Arc` handles, so eviction only
    /// drops the cache entry; memory is released once the last handle
    /// goes away.
    fn evict_over_cap(&self, keep: Option<usize>) {
        let Some(cap) = self.max_resident else {
            return;
        };
        loop {
            let mut resident = 0usize;
            let mut victim: Option<(usize, u64)> = None;
            for (i, lazy) in self.shards.iter().enumerate() {
                let slot = lazy.slot.lock().unwrap();
                if slot.loaded.is_none() {
                    continue;
                }
                resident += 1;
                if Some(i) == keep {
                    continue;
                }
                if victim.is_none_or(|(_, t)| slot.last_used < t) {
                    victim = Some((i, slot.last_used));
                }
            }
            if resident <= cap {
                return;
            }
            let Some((i, _)) = victim else {
                return;
            };
            let mut slot = self.shards[i].slot.lock().unwrap();
            // Re-check under the lock: a racing probe may have bumped
            // or reloaded the slot since we scanned.
            if let Some(shard) = slot.loaded.take() {
                telemetry::counter(names::SHARD_EVICTIONS).inc();
                RESIDENT_SHARDS.fetch_sub(1, Ordering::Relaxed);
                if shard.is_mapped() {
                    MAPPED_BYTES.fetch_sub(shard.bytes() as i64, Ordering::Relaxed);
                }
                publish_residency();
            }
        }
    }

    /// Whether this set was built from exactly this index's contents.
    pub fn matches_index(&self, index: &VideoIndex) -> bool {
        self.meta.frames == index.frames && self.meta.index_fingerprint == index_fingerprint(index)
    }

    /// Whether this set's vectors came from exactly this model.
    pub fn matches_model(&self, sim: &LearnedSimilarity) -> bool {
        self.meta.model_fingerprint == model_fingerprint(sim)
    }

    /// Gathers the candidate rows of every probed centroid across all
    /// shards, loading only the shards that own rows under a probed
    /// list. `probe` is the (already truncated) centroid ranking.
    /// Fails with the first shard load error — callers fall back to the
    /// scan, which preserves results at the cost of speed.
    pub fn gather(&self, probe: &[usize]) -> Result<Gathered, Arc<StoreError>> {
        let mut gathered = Gathered {
            shards: Vec::new(),
            rows: Vec::new(),
        };
        for (i, entry) in self.manifest.shards.iter().enumerate() {
            let has_rows = probe
                .iter()
                .any(|&c| entry.list_rows.get(c).copied().unwrap_or(0) > 0);
            if !has_rows {
                telemetry::counter(names::SHARD_SKIPPED).inc();
                continue;
            }
            let shard = self.load_shard(i)?;
            telemetry::counter(names::SHARD_PROBES).inc();
            let held = gathered.shards.len() as u32;
            for &c in probe {
                for &r in shard.list(c) {
                    gathered.rows.push((shard.row(r as usize), held, r));
                }
            }
            gathered.shards.push(shard);
        }
        Ok(gathered)
    }

    /// Loads and verifies every shard (mapping + checksum + manifest
    /// cross-check). This is `ingest --verify` and the loud-failure
    /// path for corruption tests: the returned error names the broken
    /// shard file.
    pub fn verify(&self) -> Result<(), StoreError> {
        for (i, lazy) in self.shards.iter().enumerate() {
            if self.load_shard(i).is_err() {
                // Re-open to hand the caller an owned error (the cached
                // one stays sticky behind the shared reference).
                return Err(match LoadedShard::open(&lazy.path, Some(lazy.checksum)) {
                    Err(e) => e,
                    Ok(_) => unreachable!("cached load error reproduces"),
                });
            }
        }
        Ok(())
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        let mut dropped_shards = 0i64;
        let mut dropped_bytes = 0i64;
        for lazy in &self.shards {
            if let Some(shard) = &lazy.slot.lock().unwrap().loaded {
                dropped_shards += 1;
                if shard.is_mapped() {
                    dropped_bytes += shard.bytes() as i64;
                }
            }
        }
        if dropped_shards > 0 || dropped_bytes > 0 {
            RESIDENT_SHARDS.fetch_sub(dropped_shards, Ordering::Relaxed);
            MAPPED_BYTES.fetch_sub(dropped_bytes, Ordering::Relaxed);
            publish_residency();
        }
    }
}

impl Matcher<LearnedSimilarity> {
    /// The sharded index-backed search path: embeds the query once,
    /// ranks the shared quantizer's centroids, fans out to the shards
    /// owning rows under the top `nprobe` lists, and exactly re-ranks
    /// the gathered candidates. Fallback rules are identical to
    /// [`search_with_store`](Self::search_with_store), plus one more: a
    /// shard that fails to load (corruption discovered at first probe)
    /// falls back to the full scan, so results stay correct.
    pub fn search_with_shards(
        &self,
        index: &VideoIndex,
        set: &ShardSet,
        query: &Clip,
        cancel: &CancelToken,
    ) -> Result<StoreSearch, MatchError> {
        self.search_with_shards_scoped(index, set, query, cancel, None)
    }

    /// [`search_with_shards`](Self::search_with_shards) restricted to
    /// an epoch scope (windows ending at or after `min_end`; see
    /// `search_with_store_scoped` for the semantics).
    pub fn search_with_shards_scoped(
        &self,
        index: &VideoIndex,
        set: &ShardSet,
        query: &Clip,
        cancel: &CancelToken,
        min_end: Option<u32>,
    ) -> Result<StoreSearch, MatchError> {
        let q_span = query.span();
        if q_span == 0
            || q_span < self.config.min_window
            || query.num_objects() == 0
            || index.frames == 0
        {
            return Ok(StoreSearch {
                moments: Vec::new(),
                from_store: false,
                probed: 0,
            });
        }
        if !self.meta_serves(index, set.meta(), query, q_span) {
            telemetry::counter(names::STORE_FALLBACKS).inc();
            let moments = self.search_with_cancel(index, query, cancel)?;
            return Ok(StoreSearch {
                moments: vstore::scope_moments(moments, min_end),
                from_store: false,
                probed: 0,
            });
        }
        let _search_span = telemetry::span(names::MATCHER_SEARCH);
        cancel.check().map_err(MatchError::from)?;
        let prepared = {
            let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
            self.sim.prepare(query)?
        };
        let PreparedQuery::Embedding(ref qe) = prepared else {
            unreachable!("learned similarity always prepares an embedding")
        };
        let gathered = {
            let _probe_span = telemetry::span(names::STORE_PROBE);
            let ranked = set.quantizer.rank(qe);
            let nprobe = set.nprobe.max(1).min(ranked.len().max(1));
            set.gather(&ranked[..nprobe.min(ranked.len())])
                .map(Some)
                .unwrap_or_else(|e| {
                    eprintln!("shard load failed, falling back to scan: {e}");
                    None
                })
        };
        match gathered {
            Some(gathered) => {
                cancel.check().map_err(MatchError::from)?;
                let candidates = vstore::scope_candidates(gathered.candidates(), min_end);
                self.finish_store_search(index, query, &prepared, candidates, cancel)
            }
            None => {
                telemetry::counter(names::STORE_FALLBACKS).inc();
                let moments = self.search_with_cancel(index, query, cancel)?;
                Ok(StoreSearch {
                    moments: vstore::scope_moments(moments, min_end),
                    from_store: false,
                    probed: 0,
                })
            }
        }
    }

    /// [`search_with_shards`](Self::search_with_shards) for a batch of
    /// concurrent same-dataset queries: every served member's embedding
    /// goes through **one** shared centroid ranking
    /// ([`CoarseQuantizer::rank_batch`]), then each member gathers and
    /// exactly re-ranks on its own. Per-member results are
    /// bit-identical to the solo entry point.
    pub fn search_with_shards_batch(
        &self,
        index: &VideoIndex,
        set: &ShardSet,
        queries: &[(&Clip, &CancelToken)],
    ) -> Vec<Result<StoreSearch, MatchError>> {
        self.search_with_shards_batch_scoped(index, set, queries, None)
    }

    /// [`search_with_shards_batch`](Self::search_with_shards_batch)
    /// with one epoch scope shared by every member.
    pub fn search_with_shards_batch_scoped(
        &self,
        index: &VideoIndex,
        set: &ShardSet,
        queries: &[(&Clip, &CancelToken)],
        min_end: Option<u32>,
    ) -> Vec<Result<StoreSearch, MatchError>> {
        if queries.len() <= 1 {
            return queries
                .iter()
                .map(|&(q, c)| self.search_with_shards_scoped(index, set, q, c, min_end))
                .collect();
        }
        enum Plan {
            Ready(PreparedQuery),
            Done(Result<StoreSearch, MatchError>),
        }
        let _search_span = telemetry::span(names::MATCHER_SEARCH);
        let plans: Vec<Plan> = queries
            .iter()
            .map(|&(query, cancel)| {
                let q_span = query.span();
                if q_span == 0
                    || q_span < self.config.min_window
                    || query.num_objects() == 0
                    || index.frames == 0
                {
                    return Plan::Done(Ok(StoreSearch {
                        moments: Vec::new(),
                        from_store: false,
                        probed: 0,
                    }));
                }
                if !self.meta_serves(index, set.meta(), query, q_span) {
                    telemetry::counter(names::STORE_FALLBACKS).inc();
                    return Plan::Done(self.search_with_cancel(index, query, cancel).map(
                        |moments| StoreSearch {
                            moments: vstore::scope_moments(moments, min_end),
                            from_store: false,
                            probed: 0,
                        },
                    ));
                }
                match cancel.check().map_err(MatchError::from).and_then(|()| {
                    let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
                    self.sim.prepare(query).map_err(MatchError::from)
                }) {
                    Ok(prepared) => Plan::Ready(prepared),
                    Err(e) => Plan::Done(Err(e)),
                }
            })
            .collect();
        let embeddings: Vec<&[f32]> = plans
            .iter()
            .filter_map(|plan| match plan {
                Plan::Ready(PreparedQuery::Embedding(qe)) => Some(qe.as_slice()),
                Plan::Ready(_) => {
                    unreachable!("learned similarity always prepares an embedding")
                }
                Plan::Done(_) => None,
            })
            .collect();
        let ranked_all = if embeddings.is_empty() {
            Vec::new()
        } else {
            let _probe_span = telemetry::span(names::STORE_PROBE);
            set.quantizer.rank_batch(&embeddings)
        };
        let mut rank_iter = ranked_all.into_iter();
        queries
            .iter()
            .zip(plans)
            .map(|(&(query, cancel), plan)| match plan {
                Plan::Done(result) => result,
                Plan::Ready(prepared) => {
                    let ranked = rank_iter.next().expect("one ranking per served member");
                    let nprobe = self::probe_len(set, &ranked);
                    let gathered = {
                        let _probe_span = telemetry::span(names::STORE_PROBE);
                        set.gather(&ranked[..nprobe]).map(Some).unwrap_or_else(|e| {
                            eprintln!("shard load failed, falling back to scan: {e}");
                            None
                        })
                    };
                    match gathered {
                        Some(gathered) => cancel.check().map_err(MatchError::from).and_then(|()| {
                            let candidates =
                                vstore::scope_candidates(gathered.candidates(), min_end);
                            self.finish_store_search(index, query, &prepared, candidates, cancel)
                        }),
                        None => {
                            telemetry::counter(names::STORE_FALLBACKS).inc();
                            self.search_with_cancel(index, query, cancel)
                                .map(|moments| StoreSearch {
                                    moments: vstore::scope_moments(moments, min_end),
                                    from_store: false,
                                    probed: 0,
                                })
                        }
                    }
                }
            })
            .collect()
    }
}

/// The number of ranked centroids a probe actually visits.
fn probe_len(set: &ShardSet, ranked: &[usize]) -> usize {
    set.nprobe.max(1).min(ranked.len())
}

/// A monolithic store attached lazily: the header (provenance, shape)
/// is validated at attach; the full read — checksum over the whole
/// payload, column decode, ANN build — happens on first query.
pub struct LazyStore {
    meta: StoreMeta,
    rows: u64,
    source: Option<PathBuf>,
    /// `nprobe` applied to the store when it loads (and immediately, if
    /// already loaded).
    nprobe: Option<usize>,
    cell: OnceLock<Result<DatasetStore, StoreError>>,
}

impl LazyStore {
    /// Attaches a `.skstore` file by validating its header and length
    /// only. The deferred checksum still runs before any row is served
    /// (inside the first [`LazyStore::get`]).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let header = StoreHeader::read(path)?;
        Ok(LazyStore {
            meta: header.meta,
            rows: u64::from(header.rows),
            source: Some(path.to_path_buf()),
            nprobe: None,
            cell: OnceLock::new(),
        })
    }

    /// Wraps an already-loaded [`DatasetStore`] (e.g. fresh from
    /// ingest) — nothing is deferred.
    pub fn from_store(store: DatasetStore) -> Self {
        let meta = store.store.meta.clone();
        let rows = store.store.len() as u64;
        let cell = OnceLock::new();
        cell.set(Ok(store)).ok().expect("fresh cell");
        LazyStore {
            meta,
            rows,
            source: None,
            nprobe: None,
            cell,
        }
    }

    /// Provenance metadata, available without loading.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Rows recorded in the header.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Whether the full store has been read (checksum + ANN build done).
    pub fn is_loaded(&self) -> bool {
        matches!(self.cell.get(), Some(Ok(_)))
    }

    /// Overrides the probe width applied when the store loads.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = Some(nprobe);
        if let Some(Ok(store)) = self.cell.get_mut() {
            store.nprobe = nprobe.max(1);
        }
    }

    /// The loaded store, reading + verifying + indexing it on first
    /// call. Errors are sticky and loud (they name the file).
    pub fn get(&self) -> &Result<DatasetStore, StoreError> {
        self.cell.get_or_init(|| {
            let path = self.source.as_ref().expect("unloaded stores have a path");
            DatasetStore::open(path).map(|mut store| {
                if let Some(nprobe) = self.nprobe {
                    store.nprobe = nprobe.max(1);
                }
                store
            })
        })
    }
}

/// One dataset's attached store, whichever shape it takes on disk. The
/// engine and CLI route queries through this so monolithic files and
/// shard sets serve identically.
pub enum StoreTier {
    /// A single `.skstore` file, loaded lazily.
    Monolithic(LazyStore),
    /// A `.skset/` directory of shards, loaded shard-by-shard, lazily.
    Sharded(ShardSet),
}

impl From<DatasetStore> for StoreTier {
    fn from(store: DatasetStore) -> Self {
        StoreTier::Monolithic(LazyStore::from_store(store))
    }
}

impl StoreTier {
    /// Dataset name recorded at ingest.
    pub fn dataset(&self) -> &str {
        &self.meta().dataset
    }

    /// Provenance metadata (attach-time, no payload reads).
    pub fn meta(&self) -> &StoreMeta {
        match self {
            StoreTier::Monolithic(s) => s.meta(),
            StoreTier::Sharded(s) => s.meta(),
        }
    }

    /// Rows the tier serves (from headers/manifest).
    pub fn rows(&self) -> u64 {
        match self {
            StoreTier::Monolithic(s) => s.rows(),
            StoreTier::Sharded(s) => s.total_rows(),
        }
    }

    /// Shards in the tier (1 for a monolithic store).
    pub fn shard_count(&self) -> usize {
        match self {
            StoreTier::Monolithic(_) => 1,
            StoreTier::Sharded(s) => s.shard_count(),
        }
    }

    /// Whether this tier was built from exactly this index's contents.
    pub fn matches_index(&self, index: &VideoIndex) -> bool {
        self.meta().frames == index.frames
            && self.meta().index_fingerprint == index_fingerprint(index)
    }

    /// Whether this tier's vectors came from exactly this model.
    pub fn matches_model(&self, sim: &LearnedSimilarity) -> bool {
        self.meta().model_fingerprint == model_fingerprint(sim)
    }

    /// Overrides the probe width.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        match self {
            StoreTier::Monolithic(s) => s.set_nprobe(nprobe),
            StoreTier::Sharded(s) => s.nprobe = nprobe.max(1),
        }
    }

    /// Caps resident shards (no-op for a monolithic store, which is a
    /// single always-resident unit).
    pub fn set_max_resident(&mut self, cap: Option<usize>) {
        if let StoreTier::Sharded(s) = self {
            s.set_max_resident(cap);
        }
    }

    /// Ingest epoch the tier serves: the number of committed
    /// [`append_frames`] calls (0 for a fresh ingest, and always 0 for
    /// a monolithic store, which cannot be appended to).
    pub fn epoch(&self) -> u64 {
        match self {
            StoreTier::Monolithic(_) => 0,
            StoreTier::Sharded(s) => s.manifest().epoch,
        }
    }
}

impl Matcher<LearnedSimilarity> {
    /// Tier-dispatching store search: monolithic stores go through
    /// [`search_with_store`](Self::search_with_store) (loading lazily
    /// on first use), shard sets through
    /// [`search_with_shards`](Self::search_with_shards). A monolithic
    /// store whose deferred full read fails falls back to the scan.
    pub fn search_with_tier(
        &self,
        index: &VideoIndex,
        tier: &StoreTier,
        query: &Clip,
        cancel: &CancelToken,
    ) -> Result<StoreSearch, MatchError> {
        self.search_with_tier_scoped(index, tier, query, cancel, None)
    }

    /// [`search_with_tier`](Self::search_with_tier) restricted to an
    /// epoch scope (windows ending at or after `min_end` — the
    /// standing-query evaluation range).
    pub fn search_with_tier_scoped(
        &self,
        index: &VideoIndex,
        tier: &StoreTier,
        query: &Clip,
        cancel: &CancelToken,
        min_end: Option<u32>,
    ) -> Result<StoreSearch, MatchError> {
        match tier {
            StoreTier::Sharded(set) => {
                self.search_with_shards_scoped(index, set, query, cancel, min_end)
            }
            StoreTier::Monolithic(lazy) => match lazy.get() {
                Ok(store) => self.search_with_store_scoped(index, store, query, cancel, min_end),
                Err(e) => {
                    eprintln!("store load failed, falling back to scan: {e}");
                    telemetry::counter(names::STORE_FALLBACKS).inc();
                    let moments = self.search_with_cancel(index, query, cancel)?;
                    Ok(StoreSearch {
                        moments: vstore::scope_moments(moments, min_end),
                        from_store: false,
                        probed: 0,
                    })
                }
            },
        }
    }

    /// Tier-dispatching batched store search (the scheduler's
    /// store-aware fusion path). Per-member results are bit-identical
    /// to calling [`search_with_tier`](Self::search_with_tier) per
    /// member.
    pub fn search_with_tier_batch(
        &self,
        index: &VideoIndex,
        tier: &StoreTier,
        queries: &[(&Clip, &CancelToken)],
    ) -> Vec<Result<StoreSearch, MatchError>> {
        self.search_with_tier_batch_scoped(index, tier, queries, None)
    }

    /// [`search_with_tier_batch`](Self::search_with_tier_batch) with
    /// one epoch scope shared by every member (the scheduler only fuses
    /// jobs with equal scopes).
    pub fn search_with_tier_batch_scoped(
        &self,
        index: &VideoIndex,
        tier: &StoreTier,
        queries: &[(&Clip, &CancelToken)],
        min_end: Option<u32>,
    ) -> Vec<Result<StoreSearch, MatchError>> {
        match tier {
            StoreTier::Sharded(set) => {
                self.search_with_shards_batch_scoped(index, set, queries, min_end)
            }
            StoreTier::Monolithic(lazy) => match lazy.get() {
                Ok(store) => self.search_with_store_batch_scoped(index, store, queries, min_end),
                Err(e) => {
                    eprintln!("store load failed, falling back to scan: {e}");
                    queries
                        .iter()
                        .map(|&(query, cancel)| {
                            telemetry::counter(names::STORE_FALLBACKS).inc();
                            self.search_with_cancel(index, query, cancel)
                                .map(|moments| StoreSearch {
                                    moments: vstore::scope_moments(moments, min_end),
                                    from_store: false,
                                    probed: 0,
                                })
                        })
                        .collect()
                }
            },
        }
    }
}

/// Directory name a dataset's shard set is written under.
pub fn shard_set_dir_name(dataset: &str) -> String {
    format!("{}.{SHARD_SET_EXT}", vstore::sanitize(dataset))
}

/// Attaches every store in `dir` — `.skstore` files as lazy monolithic
/// tiers, `.skset/` directories (those containing a manifest) as shard
/// sets — keyed by the dataset name each records. Attach validates
/// headers and manifests only; a structurally damaged store fails
/// loudly here, while payload corruption surfaces at first probe.
pub fn load_store_tier_dir(dir: &Path) -> Result<BTreeMap<String, StoreTier>, StoreError> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let tier = if path.is_dir() {
            if !path.join(MANIFEST_FILE).is_file() {
                continue;
            }
            StoreTier::Sharded(ShardSet::open(&path)?)
        } else if path.extension().is_some_and(|x| x == vstore::STORE_EXT) {
            StoreTier::Monolithic(LazyStore::open(&path)?)
        } else {
            continue;
        };
        out.insert(tier.dataset().to_string(), tier);
    }
    Ok(out)
}
