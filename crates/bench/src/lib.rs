//! # sketchql-bench
//!
//! Benchmarks for SketchQL on the in-tree [`harness`] (the workspace
//! builds offline, so criterion is not available). Shared fixtures live
//! here; the bench targets (one per experiment table, see DESIGN.md §4)
//! are under `benches/`.

#![warn(missing_docs)]

pub mod harness;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::training::{train, TrainedModel, TrainingConfig};
use sketchql_datasets::{generate_video, SceneFamily, SyntheticVideo, VideoConfig};
use sketchql_trajectory::Clip;

/// A deterministic fixture video for benchmarking.
pub fn bench_video(events_per_kind: usize, seed: u64) -> SyntheticVideo {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind,
        distractors: 8,
        fps: 30.0,
    };
    generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed))
}

/// A quickly-trained model for benchmarking inference paths. Training cost
/// itself is benchmarked separately; correctness does not matter here, so
/// only a handful of steps are run.
pub fn bench_model() -> TrainedModel {
    let mut cfg = TrainingConfig::small();
    cfg.steps = 5;
    train(cfg)
}

/// A representative single-object candidate clip (one left turn view).
pub fn bench_clip(seed: u64) -> Clip {
    let video = bench_video(1, seed);
    let ev = &video.events[0];
    let track = &video.truth.objects[ev.object_ids[0] as usize];
    Clip::new(
        video.truth.frame_width,
        video.truth.frame_height,
        vec![track.slice(ev.start, ev.end).rebase(0)],
    )
}
