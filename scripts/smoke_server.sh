#!/usr/bin/env bash
# End-to-end CLI smoke for the query service: generate a small video,
# train a throwaway model, start `sketchql-cli serve`, and drive it with
# `sketchql-cli client` (ping, list, query, stats, shutdown). Verifies
# the wire round trip and the graceful drain from the shipped binary, not
# just from the crate's integration tests.
#
#   scripts/smoke_server.sh                     # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_server.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_SMOKE_ADDR:-127.0.0.1:17878}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== server smoke: fixtures"
"$CLI" generate --out "$work/video.json" --events 1 --distractors 2 --seed 3 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null

echo "== server smoke: serve on $ADDR"
"$CLI" serve --model "$work/model.json" --videos "traffic=$work/video.json" \
    --addr "$ADDR" --workers 2 --oracle-tracks >"$work/serve.log" 2>&1 &
serve_pid=$!

# Wait for the listener to come up (the serve log announces it).
for _ in $(seq 1 50); do
    grep -q "serving on" "$work/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done

echo "== server smoke: client round trip"
"$CLI" client --addr "$ADDR" --action ping
"$CLI" client --addr "$ADDR" --action list
"$CLI" client --addr "$ADDR" --action query \
    --dataset traffic --event left_turn --top-k 3 --deadline-ms 30000 \
    | tee "$work/query.out"
grep -q "^1 " "$work/query.out" || { echo "query returned no moments" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action stats
"$CLI" client --addr "$ADDR" --action shutdown

# The serve process must drain and exit on its own after the wire shutdown.
for _ in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve did not exit after wire shutdown" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
serve_pid=""
grep -q "server stopped" "$work/serve.log" || { cat "$work/serve.log" >&2; exit 1; }

echo "ok: server smoke passed"
