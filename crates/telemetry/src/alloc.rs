//! A counting `#[global_allocator]` wrapper: per-process and per-thread
//! allocation accounting with zero dependencies.
//!
//! Every allocation that goes through the global allocator bumps two
//! process-wide atomics (bytes, count) and, when the allocating thread's
//! TLS is alive, two thread-local cells. The thread-local counters are
//! what attribution scopes diff: a [`TraceGuard`](crate::TraceGuard)
//! snapshots them on entry and adds the delta to its trace on drop, so
//! heap traffic lands on the query that caused it even when several
//! queries run concurrently on different workers.
//!
//! The wrapper delegates to [`std::alloc::System`] and adds one TLS
//! lookup plus a few `Cell` bumps per allocation; the process-wide
//! atomics are only touched every [`FLUSH_EVERY`] allocations per thread
//! (batched flush), keeping contended cache-line traffic off the alloc
//! fast path. That is cheap enough to leave on in production (the
//! `bench_overhead.sh` gate holds the whole telemetry stack under 2%).
//! It is only installed when the `enabled` feature is compiled in; a
//! `--no-default-features` build uses the system allocator untouched.
//!
//! Frees are intentionally not tracked: the interesting per-query number
//! is allocation *pressure* (how much the query churned), not live heap,
//! and skipping `dealloc` keeps the wrapper off the free fast path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The counting allocator. Installed as the `#[global_allocator]` when
/// the `enabled` feature is on; inert (never receives calls) otherwise.
pub struct CountingAlloc;

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);

/// Allocations a thread accumulates locally before folding them into the
/// process-wide atomics. The process totals therefore lag each thread by
/// at most this many allocations — fine for the export-time gauges they
/// feed, and it keeps the shared cache line out of the alloc fast path.
const FLUSH_EVERY: u64 = 64;

/// Per-thread allocation state: the exact monotonic counters the
/// attribution scopes diff, plus the not-yet-flushed share of the
/// process-wide totals.
struct ThreadAllocState {
    bytes: Cell<u64>,
    count: Cell<u64>,
    pending_bytes: Cell<u64>,
    pending_count: Cell<u64>,
}

thread_local! {
    static THREAD_ALLOC: ThreadAllocState = const {
        ThreadAllocState {
            bytes: Cell::new(0),
            count: Cell::new(0),
            pending_bytes: Cell::new(0),
            pending_count: Cell::new(0),
        }
    };
}

/// Records one allocation of `size` bytes. Must not allocate itself:
/// it runs inside the allocator. `try_with` covers TLS teardown during
/// thread exit, when only the process-wide totals can be updated.
#[inline]
fn note(size: usize) {
    let in_tls = THREAD_ALLOC.try_with(|s| {
        s.bytes.set(s.bytes.get().wrapping_add(size as u64));
        s.count.set(s.count.get().wrapping_add(1));
        let pending_bytes = s.pending_bytes.get().wrapping_add(size as u64);
        let pending_count = s.pending_count.get() + 1;
        if pending_count >= FLUSH_EVERY {
            TOTAL_BYTES.fetch_add(pending_bytes, Ordering::Relaxed);
            TOTAL_COUNT.fetch_add(pending_count, Ordering::Relaxed);
            s.pending_bytes.set(0);
            s.pending_count.set(0);
        } else {
            s.pending_bytes.set(pending_bytes);
            s.pending_count.set(pending_count);
        }
    });
    if in_tls.is_err() {
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            note(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        // Count only growth: a grow-in-place or move both make new bytes
        // available to the caller; a shrink allocates nothing new.
        if !new_ptr.is_null() && new_size > layout.size() {
            note(new_size - layout.size());
        }
        new_ptr
    }
}

#[cfg(feature = "enabled")]
#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// `(bytes, allocations)` performed by the current thread since it
/// started. Monotonic per thread; diffs of successive calls measure the
/// traffic in between. Both zero when telemetry is compiled out.
pub fn thread_allocated() -> (u64, u64) {
    THREAD_ALLOC
        .try_with(|s| (s.bytes.get(), s.count.get()))
        .unwrap_or((0, 0))
}

/// `(bytes, allocations)` performed process-wide since start. Monotonic;
/// this is cumulative allocation pressure, not the live heap size, and
/// it may lag the per-thread truth by up to [`FLUSH_EVERY`] allocations
/// per live thread (batched flush). Both zero when telemetry is
/// compiled out.
pub fn process_allocated() -> (u64, u64) {
    (
        TOTAL_BYTES.load(Ordering::Relaxed),
        TOTAL_COUNT.load(Ordering::Relaxed),
    )
}
