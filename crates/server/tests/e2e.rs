//! End-to-end wire tests: a real TCP server on an ephemeral port, real
//! clients, graceful shutdown.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{
    Client, ClientError, Engine, EngineConfig, ErrorKind, QuerySpec, Response, Server,
    PROTOCOL_VERSION,
};

use common::{tiny_model, two_datasets};

fn start_server(workers: usize) -> Server {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers,
            ..Default::default()
        },
    );
    Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn ping_list_query_shutdown_round_trip() {
    let server = start_server(2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

    let datasets = client.list_datasets().unwrap();
    assert_eq!(
        datasets.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
        vec!["alpha", "beta"],
    );
    assert!(datasets.iter().all(|d| d.frames > 0 && d.tracks > 0));

    // Wire answers are byte-identical to in-process execution: floats
    // serialize via shortest round-trip formatting, so nothing is lost.
    let direct = server
        .engine()
        .execute(QuerySpec {
            top_k: Some(5),
            ..QuerySpec::new("alpha", query_clip(EventKind::LeftTurn))
        })
        .unwrap();
    let outcome = client
        .query_event("alpha", "left_turn", Some(5), None)
        .unwrap();
    assert!(!outcome.moments.is_empty());
    assert_eq!(outcome.moments, direct.moments);

    let stats = client.stats().unwrap();
    assert_eq!(stats.workers, 2);
    assert!(stats.completed >= 2);

    client.shutdown().unwrap();
    server.wait_for_shutdown_request();
    server.shutdown();
}

#[test]
fn error_responses_keep_the_connection_usable() {
    let server = start_server(1);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client
        .query_event("alpha", "moonwalk", None, None)
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::UnknownEvent,
            ..
        }
    ));

    let err = client
        .query_event("nope", "left_turn", None, None)
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::UnknownDataset,
            ..
        }
    ));

    // The same connection still answers real queries afterwards.
    let outcome = client.query_event("beta", "u_turn", Some(3), None).unwrap();
    assert!(outcome.moments.len() <= 3);

    server.shutdown();
}

#[test]
fn garbage_line_gets_bad_request_not_a_hangup() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            kind: ErrorKind::BadRequest,
            ..
        }
    ));

    // Connection survives: a valid request on the same socket works.
    stream.write_all(b"\"Ping\"\n").unwrap();
    stream.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(
        resp,
        Response::Pong {
            version: PROTOCOL_VERSION
        }
    );
    server.shutdown();
}

#[test]
fn concurrent_wire_clients_get_identical_answers() {
    let server = start_server(4);
    let addr = server.local_addr();

    let mut reference = Client::connect(addr).unwrap();
    let expected = reference
        .query_event("alpha", "left_turn", None, None)
        .unwrap()
        .moments;

    let all: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .query_event("alpha", "left_turn", None, None)
                        .unwrap()
                        .moments
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for moments in all {
        assert_eq!(moments, expected, "wire client diverged");
    }
    server.shutdown();
}

/// Admission class and priority travel the wire: a classed query lands
/// in its class's stats, and a rate-limited class answers `RateLimited`
/// without closing the connection.
#[test]
fn classed_query_and_rate_limit_over_the_wire() {
    use sketchql_server::{ClassConfig, QueryOptions, SchedPolicy};
    use std::collections::BTreeMap;

    let mut classes = BTreeMap::new();
    classes.insert(
        "metered".to_string(),
        ClassConfig {
            priority: 5,
            rate_per_sec: 1.0,
            burst: 1.0,
            ..Default::default()
        },
    );
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            sched: SchedPolicy {
                classes,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let server = Server::start(engine, "127.0.0.1:0").expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let opts = QueryOptions {
        class: Some("metered".into()),
        priority: Some(7),
        ..Default::default()
    };
    let outcome = client
        .query_event_with("alpha", "left_turn", &opts)
        .unwrap();
    assert!(!outcome.moments.is_empty());

    // The burst is spent; the immediate second query is rate limited.
    let err = client
        .query_event_with("alpha", "left_turn", &opts)
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::RateLimited,
            ..
        }
    ));

    // The connection survives, and the class breakdown is on the wire.
    let stats = client.stats().unwrap();
    assert_eq!(stats.rate_limited, 1);
    let metered = stats
        .classes
        .iter()
        .find(|c| c.name == "metered")
        .expect("declared class appears in Stats");
    assert_eq!((metered.completed, metered.rate_limited), (1, 1));
    assert_eq!(metered.priority, 5);

    // Unclassed queries on the same connection still work.
    client.query_event("beta", "u_turn", Some(3), None).unwrap();
    server.shutdown();
}
