//! ByteTrack-style multi-object tracking.
//!
//! ByteTrack's core insight ("associating every detection box", ECCV 2022,
//! reference [13] of the demo paper) is a **two-stage** association: match
//! high-confidence detections to tracks first, then try to rescue the
//! remaining tracks with *low*-confidence detections (usually occluded or
//! blurred objects that a score threshold would have discarded). Tracks
//! coast on a constant-velocity Kalman filter while unmatched.

use serde::{Deserialize, Serialize};
use sketchql_telemetry::{self as telemetry, names};
#[cfg(test)]
use sketchql_trajectory::BBox;
use sketchql_trajectory::{ObjectClass, TrackId, TrajPoint, Trajectory};
use std::sync::OnceLock;

use crate::detection::Detection;
use crate::hungarian::assign;
use crate::kalman::KalmanBoxTracker;

/// Per-frame tracker counters, registry-looked-up once per process:
/// `step` runs once per video frame, so the mutex-guarded name lookup
/// must not sit on that path.
struct StepCounters {
    associations: &'static telemetry::Counter,
    kalman_predicts: &'static telemetry::Counter,
    kalman_updates: &'static telemetry::Counter,
}

fn step_counters() -> &'static StepCounters {
    static C: OnceLock<StepCounters> = OnceLock::new();
    C.get_or_init(|| StepCounters {
        associations: telemetry::counter(names::TRACKER_ASSOCIATIONS),
        kalman_predicts: telemetry::counter(names::KALMAN_PREDICTS),
        kalman_updates: telemetry::counter(names::KALMAN_UPDATES),
    })
}

/// Tracker thresholds. Defaults follow the ByteTrack paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Detections scoring at least this go to the first association stage.
    pub high_thresh: f32,
    /// Detections scoring at least this (but below `high_thresh`) go to the
    /// rescue stage; anything lower is discarded.
    pub low_thresh: f32,
    /// Maximum `1 - IoU` cost accepted in the first stage.
    pub match_thresh: f32,
    /// Maximum `1 - IoU` cost accepted in the rescue stage (stricter).
    pub rescue_thresh: f32,
    /// Minimum score to *start* a new track.
    pub init_thresh: f32,
    /// Frames a track may coast unmatched before being dropped.
    pub max_lost: u32,
    /// Consecutive hits before a tentative track is confirmed.
    pub min_hits: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            high_thresh: 0.6,
            low_thresh: 0.1,
            match_thresh: 0.8,
            rescue_thresh: 0.5,
            init_thresh: 0.7,
            max_lost: 30,
            min_hits: 3,
        }
    }
}

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackState {
    /// Recently born, not yet confirmed.
    Tentative,
    /// Confirmed and matched recently.
    Confirmed,
    /// Confirmed but coasting without a match.
    Lost,
}

/// One object track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable identifier.
    pub id: TrackId,
    /// Object class (from the first matched detection).
    pub class: ObjectClass,
    /// Lifecycle state.
    pub state: TrackState,
    kf: KalmanBoxTracker,
    hits: u32,
    lost_frames: u32,
    points: Vec<TrajPoint>,
}

impl Track {
    fn new(id: TrackId, det: &Detection, frame: u32) -> Self {
        Track {
            id,
            class: det.class,
            state: TrackState::Tentative,
            kf: KalmanBoxTracker::new(&det.bbox),
            hits: 1,
            lost_frames: 0,
            points: vec![TrajPoint::new(frame, det.bbox)],
        }
    }

    fn predict(&mut self) {
        self.kf.predict();
    }

    fn mark_matched(&mut self, det: &Detection, frame: u32, min_hits: u32) {
        self.kf.update(&det.bbox);
        self.hits += 1;
        self.lost_frames = 0;
        if self.hits >= min_hits {
            self.state = TrackState::Confirmed;
        }
        self.points.push(TrajPoint::new(frame, self.kf.bbox()));
    }

    fn mark_missed(&mut self) {
        self.lost_frames += 1;
        if self.state == TrackState::Confirmed {
            self.state = TrackState::Lost;
        }
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the track has no observations (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Converts the track into a trajectory.
    pub fn to_trajectory(&self) -> Trajectory {
        Trajectory::from_points(self.id, self.class, self.points.clone())
    }
}

/// The ByteTrack multi-object tracker.
#[derive(Debug, Clone)]
pub struct ByteTracker {
    /// Tracker thresholds.
    pub config: TrackerConfig,
    active: Vec<Track>,
    finished: Vec<Track>,
    next_id: TrackId,
    frame: u32,
}

impl ByteTracker {
    /// Creates a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        ByteTracker {
            config,
            active: Vec::new(),
            finished: Vec::new(),
            next_id: 1,
            frame: 0,
        }
    }

    /// Current frame index (number of `step` calls so far).
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// Currently active tracks.
    pub fn active_tracks(&self) -> &[Track] {
        &self.active
    }

    fn iou_cost(tracks: &[&Track], dets: &[&Detection]) -> Vec<Vec<f32>> {
        tracks
            .iter()
            .map(|t| {
                let tb = t.kf.bbox();
                dets.iter()
                    .map(|d| {
                        if t.class != d.class {
                            // Class gate: never associate across classes.
                            f32::INFINITY
                        } else {
                            1.0 - tb.iou(&d.bbox)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Processes one frame of detections.
    pub fn step(&mut self, detections: &[Detection]) {
        let counters = step_counters();
        let frame = self.frame;
        self.frame += 1;
        let cfg = self.config;

        for t in &mut self.active {
            t.predict();
        }
        counters.kalman_predicts.add(self.active.len() as u64);

        let high: Vec<&Detection> = detections
            .iter()
            .filter(|d| d.score >= cfg.high_thresh)
            .collect();
        let low: Vec<&Detection> = detections
            .iter()
            .filter(|d| d.score >= cfg.low_thresh && d.score < cfg.high_thresh)
            .collect();

        // --- Stage 1: all tracks vs high-confidence detections.
        let track_idx: Vec<usize> = (0..self.active.len()).collect();
        let track_refs: Vec<&Track> = self.active.iter().collect();
        let cost = Self::iou_cost(&track_refs, &high);
        let (pairs, unmatched_tracks, _) = assign(&cost, cfg.match_thresh);
        // Recompute unmatched detections from the pairs: `assign` cannot
        // report columns when the cost matrix has zero rows (no tracks yet).
        let mut det_matched = vec![false; high.len()];
        for &(_, di) in &pairs {
            det_matched[di] = true;
        }
        let unmatched_high: Vec<usize> = (0..high.len()).filter(|&d| !det_matched[d]).collect();

        let mut matched_track_flags = vec![false; self.active.len()];
        for &(ti, di) in &pairs {
            let t = &mut self.active[track_idx[ti]];
            t.state = if t.hits + 1 >= cfg.min_hits {
                TrackState::Confirmed
            } else {
                t.state
            };
            t.mark_matched(high[di], frame, cfg.min_hits);
            matched_track_flags[track_idx[ti]] = true;
        }

        // --- Stage 2: rescue remaining (previously confirmed) tracks with
        // low-confidence detections.
        let rescue_idx: Vec<usize> = unmatched_tracks
            .iter()
            .map(|&ti| track_idx[ti])
            .filter(|&i| self.active[i].state != TrackState::Tentative)
            .collect();
        let rescue_refs: Vec<&Track> = rescue_idx.iter().map(|&i| &self.active[i]).collect();
        let cost2 = Self::iou_cost(&rescue_refs, &low);
        let (pairs2, _, _) = assign(&cost2, cfg.rescue_thresh);
        for &(ti, di) in &pairs2 {
            let t = &mut self.active[rescue_idx[ti]];
            t.mark_matched(low[di], frame, cfg.min_hits);
            matched_track_flags[rescue_idx[ti]] = true;
        }
        let matched = (pairs.len() + pairs2.len()) as u64;
        counters.associations.add(matched);
        counters.kalman_updates.add(matched);

        // --- Miss handling.
        for (i, t) in self.active.iter_mut().enumerate() {
            if !matched_track_flags[i] {
                t.mark_missed();
            }
        }

        // --- Births: unmatched high detections with strong scores.
        for &di in &unmatched_high {
            let d = high[di];
            if d.score >= cfg.init_thresh {
                self.active.push(Track::new(self.next_id, d, frame));
                self.next_id += 1;
            }
        }

        // --- Deaths: tentative tracks that missed, and lost tracks past
        // the coast budget.
        let max_lost = cfg.max_lost;
        let mut keep = Vec::with_capacity(self.active.len());
        for t in self.active.drain(..) {
            let dead = match t.state {
                TrackState::Tentative => t.lost_frames > 0,
                _ => t.lost_frames > max_lost,
            };
            if dead {
                if t.state != TrackState::Tentative {
                    self.finished.push(t);
                }
            } else {
                keep.push(t);
            }
        }
        self.active = keep;
    }

    /// Flushes all tracks and returns every (confirmed) trajectory with at
    /// least `min_len` observations, sorted by track id.
    pub fn into_trajectories(mut self, min_len: usize) -> Vec<Trajectory> {
        for t in self.active.drain(..) {
            if t.state != TrackState::Tentative {
                self.finished.push(t);
            }
        }
        let mut out: Vec<Trajectory> = self
            .finished
            .iter()
            .filter(|t| t.len() >= min_len)
            .map(Track::to_trajectory)
            .collect();
        out.sort_by_key(|t| t.id);
        out
    }
}

/// Convenience: runs the tracker over per-frame detection lists.
pub fn track_detections(
    frames: &[Vec<Detection>],
    config: TrackerConfig,
    min_len: usize,
) -> Vec<Trajectory> {
    // One span for the whole association loop: per-frame spans would
    // swamp the span buffer on long videos without adding signal.
    let _span = telemetry::span(names::TRACKER_ASSOCIATE);
    let mut tracker = ByteTracker::new(config);
    for dets in frames {
        tracker.step(dets);
    }
    tracker.into_trajectories(min_len)
}

/// A tracked bounding box with no jitter, used in tests.
#[cfg(test)]
fn det(cx: f32, cy: f32, score: f32) -> Detection {
    Detection {
        bbox: BBox::new(cx, cy, 40.0, 20.0),
        class: ObjectClass::Car,
        score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_object_yields_single_track() {
        let frames: Vec<Vec<Detection>> = (0..30)
            .map(|f| vec![det(f as f32 * 4.0, 100.0, 0.9)])
            .collect();
        let tracks = track_detections(&frames, TrackerConfig::default(), 5);
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].len() >= 28);
        assert_eq!(tracks[0].class, ObjectClass::Car);
    }

    #[test]
    fn two_crossing_objects_keep_identities() {
        // Objects far apart vertically, moving horizontally in opposite
        // directions — never overlapping.
        let frames: Vec<Vec<Detection>> = (0..40)
            .map(|f| {
                vec![
                    det(f as f32 * 5.0, 100.0, 0.9),
                    det(400.0 - f as f32 * 5.0, 400.0, 0.9),
                ]
            })
            .collect();
        let tracks = track_detections(&frames, TrackerConfig::default(), 10);
        assert_eq!(tracks.len(), 2);
        // Each track is monotone in x (no identity mixing).
        for t in &tracks {
            let xs: Vec<f32> = t.centers().iter().map(|p| p.x).collect();
            let inc = xs.windows(2).all(|w| w[1] >= w[0] - 1.0);
            let dec = xs.windows(2).all(|w| w[1] <= w[0] + 1.0);
            assert!(inc || dec, "track mixes directions: {xs:?}");
        }
    }

    #[test]
    fn gap_is_bridged_by_coasting() {
        // Detection missing for 8 frames mid-track.
        let mut frames = Vec::new();
        for f in 0..60 {
            if (25..33).contains(&f) {
                frames.push(vec![]);
            } else {
                frames.push(vec![det(f as f32 * 4.0, 100.0, 0.9)]);
            }
        }
        let tracks = track_detections(&frames, TrackerConfig::default(), 10);
        assert_eq!(tracks.len(), 1, "coasting should bridge the gap");
        assert!(tracks[0].span() >= 55);
    }

    #[test]
    fn low_confidence_rescue_keeps_track_alive() {
        // Scores drop below high_thresh for a stretch (simulated occlusion);
        // plain thresholding would fragment, ByteTrack rescues.
        let frames: Vec<Vec<Detection>> = (0..60)
            .map(|f| {
                let score = if (20..40).contains(&f) { 0.3 } else { 0.9 };
                vec![det(f as f32 * 4.0, 100.0, score)]
            })
            .collect();
        let tracks = track_detections(&frames, TrackerConfig::default(), 10);
        assert_eq!(tracks.len(), 1);
        // Rescue stage used those low-conf boxes: the track keeps growing
        // through the occlusion window.
        assert!(tracks[0].len() > 50, "len {}", tracks[0].len());
    }

    #[test]
    fn low_scores_never_start_tracks() {
        let frames: Vec<Vec<Detection>> = (0..30)
            .map(|f| vec![det(f as f32 * 4.0, 100.0, 0.3)])
            .collect();
        let tracks = track_detections(&frames, TrackerConfig::default(), 2);
        assert!(
            tracks.is_empty(),
            "low-conf detections must not create tracks"
        );
    }

    #[test]
    fn isolated_false_positive_does_not_survive() {
        let mut frames: Vec<Vec<Detection>> = (0..30)
            .map(|f| vec![det(f as f32 * 4.0, 100.0, 0.9)])
            .collect();
        // One-frame false positive far away.
        frames[10].push(det(900.0, 600.0, 0.95));
        let tracks = track_detections(&frames, TrackerConfig::default(), 5);
        assert_eq!(tracks.len(), 1, "tentative 1-frame track must be culled");
    }

    #[test]
    fn class_gate_prevents_cross_class_association() {
        // A car track and a person detection at the same place.
        let mut frames: Vec<Vec<Detection>> = Vec::new();
        for f in 0..20 {
            frames.push(vec![det(f as f32 * 4.0, 100.0, 0.9)]);
        }
        for f in 20..40 {
            frames.push(vec![Detection {
                bbox: BBox::new(f as f32 * 4.0, 100.0, 40.0, 20.0),
                class: ObjectClass::Person,
                score: 0.9,
            }]);
        }
        let tracks = track_detections(&frames, TrackerConfig::default(), 5);
        assert_eq!(tracks.len(), 2, "class switch must break the track");
        assert!(tracks.iter().any(|t| t.class == ObjectClass::Car));
        assert!(tracks.iter().any(|t| t.class == ObjectClass::Person));
    }

    #[test]
    fn long_disappearance_splits_track() {
        let mut frames = Vec::new();
        for f in 0..30 {
            frames.push(vec![det(f as f32 * 2.0, 100.0, 0.9)]);
        }
        for _ in 0..80 {
            frames.push(vec![]);
        }
        for f in 0..30 {
            frames.push(vec![det(f as f32 * 2.0, 100.0, 0.9)]);
        }
        let tracks = track_detections(&frames, TrackerConfig::default(), 5);
        assert_eq!(
            tracks.len(),
            2,
            "80-frame gap exceeds max_lost → two tracks"
        );
    }

    #[test]
    fn min_len_filter_applies() {
        let frames: Vec<Vec<Detection>> = (0..6)
            .map(|f| vec![det(f as f32 * 4.0, 100.0, 0.9)])
            .collect();
        let tracks = track_detections(&frames, TrackerConfig::default(), 100);
        assert!(tracks.is_empty());
    }

    #[test]
    fn tracker_state_machine_confirms_after_min_hits() {
        let mut tracker = ByteTracker::new(TrackerConfig::default());
        tracker.step(&[det(0.0, 0.0, 0.9)]);
        assert_eq!(tracker.active_tracks()[0].state, TrackState::Tentative);
        tracker.step(&[det(4.0, 0.0, 0.9)]);
        tracker.step(&[det(8.0, 0.0, 0.9)]);
        assert_eq!(tracker.active_tracks()[0].state, TrackState::Confirmed);
        // Miss one frame: confirmed → lost.
        tracker.step(&[]);
        assert_eq!(tracker.active_tracks()[0].state, TrackState::Lost);
        // Reappear: lost → confirmed again.
        tracker.step(&[det(16.0, 0.0, 0.9)]);
        assert_eq!(tracker.active_tracks()[0].state, TrackState::Confirmed);
    }
}
