#!/usr/bin/env bash
# Profiling + resource-attribution smoke: serve with the continuous
# profiler on, drive real queries, and verify the new observability
# surfaces — folded profile stacks naming the execution stages, the
# resource line on the trace waterfall, per-dataset stats, and the
# rotating slow-query log.
#
#   scripts/smoke_profile.sh                     # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_profile.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_PROFILE_SMOKE_ADDR:-127.0.0.1:17883}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== profile smoke: fixtures"
"$CLI" generate --out "$work/video.json" --events 1 --distractors 2 --seed 5 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null

echo "== profile smoke: serve on $ADDR (profiler at 97 Hz, capped slow log)"
"$CLI" serve --model "$work/model.json" --videos "traffic=$work/video.json" \
    --addr "$ADDR" --workers 2 --oracle-tracks \
    --profile-hz 97 --flight-traces 64 \
    --slow-query-ms 0 --slow-query-log "$work/slow.jsonl" \
    --slow-query-log-max-bytes 2000 \
    >"$work/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "serving on" "$work/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "continuous profiler sampling" "$work/serve.log" \
    || { echo "serve did not start the continuous profiler" >&2; cat "$work/serve.log" >&2; exit 1; }
grep -q "flight recorder: keeping the last 64 traces" "$work/serve.log" \
    || { echo "serve did not apply --flight-traces" >&2; cat "$work/serve.log" >&2; exit 1; }

echo "== profile smoke: drive queries so the sampler sees real stages"
for i in 1 2 3 4 5 6; do
    "$CLI" client --addr "$ADDR" --action query \
        --dataset traffic --event left_turn --top-k 3 --deadline-ms 30000 \
        >"$work/query.out" 2>&1
done
trace_id="$(sed -n 's/.*trace \([0-9a-f]\{12\}\)).*/\1/p' "$work/query.out")"

echo "== profile smoke: continuous-profiler aggregate names matcher stages"
"$CLI" client --addr "$ADDR" --action profile >"$work/profile.folded" 2>"$work/profile.err"
[ -s "$work/profile.folded" ] \
    || { echo "continuous profile came back empty" >&2; cat "$work/profile.err" >&2; exit 1; }
grep -Eq "sketchql\.(matcher\.(search|scan|embed)|store\.probe)" "$work/profile.folded" \
    || { echo "folded stacks name no matcher/store stage:" >&2; cat "$work/profile.folded" >&2; exit 1; }
# Folded lines are flamegraph input: "thread;span;...;span <count>".
grep -Eq '^[^ ]+(;[^ ]+)* [0-9]+$' "$work/profile.folded" \
    || { echo "folded output is not flamegraph-shaped" >&2; cat "$work/profile.folded" >&2; exit 1; }

echo "== profile smoke: trace waterfall carries the resource line"
"$CLI" client --addr "$ADDR" --action trace --trace-id "$trace_id" >"$work/trace.out"
grep -Eq "cpu [0-9.]+ ms  allocated .* in [0-9]+ allocations" "$work/trace.out" \
    || { echo "waterfall is missing the attributed-resource line" >&2; cat "$work/trace.out" >&2; exit 1; }

echo "== profile smoke: per-dataset stats and one top iteration"
"$CLI" client --addr "$ADDR" --action stats >"$work/stats.out"
grep -q "completed" "$work/stats.out" \
    || { echo "stats request failed" >&2; exit 1; }
"$CLI" client --addr "$ADDR" --action top --interval-ms 200 --iterations 1 >"$work/top.out"
grep -q "^traffic" "$work/top.out" \
    || { echo "top view is missing the per-dataset row" >&2; cat "$work/top.out" >&2; exit 1; }

echo "== profile smoke: slow log rotated at the byte cap"
[ -f "$work/slow.jsonl.1" ] \
    || { echo "capped slow log never rotated" >&2; ls -l "$work" >&2; exit 1; }
live_bytes="$(wc -c <"$work/slow.jsonl")"
if [ "$live_bytes" -gt 4000 ]; then
    echo "live slow log exceeds the cap ($live_bytes bytes)" >&2
    exit 1
fi

"$CLI" client --addr "$ADDR" --action shutdown >/dev/null
for _ in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve did not exit after wire shutdown" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
serve_pid=""

echo "ok: profile smoke passed"
