//! Polyline simplification (Ramer–Douglas–Peucker).
//!
//! A real mouse drag records hundreds of samples with hand jitter; the
//! sketcher uses RDP to reduce a recorded path to its structural corner
//! points before compiling a query (and the simplified path is what the
//! trajectory panel's boxes conceptually hold).

use crate::geom::Point2;

/// Perpendicular distance from `p` to the segment `a`-`b` (falls back to
/// point distance when the segment is degenerate).
fn segment_distance(p: &Point2, a: &Point2, b: &Point2) -> f32 {
    let ab = *b - *a;
    let len_sq = ab.dot(&ab);
    if len_sq <= f32::EPSILON {
        return p.distance(a);
    }
    let t = ((*p - *a).dot(&ab) / len_sq).clamp(0.0, 1.0);
    let proj = *a + ab * t;
    p.distance(&proj)
}

/// Simplifies a polyline with the RDP algorithm: returns the subset of
/// points whose removal would deviate the path by more than `epsilon`.
/// Endpoints are always kept. Paths with fewer than 3 points are returned
/// unchanged.
pub fn simplify_path(path: &[Point2], epsilon: f32) -> Vec<Point2> {
    if path.len() < 3 {
        return path.to_vec();
    }
    let mut keep = vec![false; path.len()];
    keep[0] = true;
    keep[path.len() - 1] = true;
    let mut stack = vec![(0usize, path.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f32);
        for (i, p) in path.iter().enumerate().take(hi).skip(lo + 1) {
            let d = segment_distance(p, &path[lo], &path[hi]);
            if d > worst_d {
                worst = i;
                worst_d = d;
            }
        }
        if worst_d > epsilon {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    path.iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

/// Maximum deviation between a polyline and its simplified form, measured
/// at the dropped points. Useful for asserting the RDP guarantee.
pub fn max_deviation(original: &[Point2], simplified: &[Point2]) -> f32 {
    if simplified.len() < 2 {
        return 0.0;
    }
    original
        .iter()
        .map(|p| {
            simplified
                .windows(2)
                .map(|w| segment_distance(p, &w[0], &w[1]))
                .fold(f32::INFINITY, f32::min)
        })
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f32, f32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let path: Vec<Point2> = (0..20).map(|i| Point2::new(i as f32, 0.0)).collect();
        let s = simplify_path(&path, 0.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], path[0]);
        assert_eq!(s[1], path[19]);
    }

    #[test]
    fn corners_are_preserved() {
        // An L shape: straight right then straight up.
        let mut path: Vec<Point2> = (0..10).map(|i| Point2::new(i as f32, 0.0)).collect();
        path.extend((1..10).map(|i| Point2::new(9.0, i as f32)));
        let s = simplify_path(&path, 0.5);
        assert_eq!(s.len(), 3, "start, corner, end: {s:?}");
        assert_eq!(s[1], Point2::new(9.0, 0.0));
    }

    #[test]
    fn jitter_below_epsilon_is_removed() {
        let path: Vec<Point2> = (0..50)
            .map(|i| Point2::new(i as f32, if i % 2 == 0 { 0.2 } else { -0.2 }))
            .collect();
        let s = simplify_path(&path, 1.0);
        assert!(s.len() <= 4, "jitter should vanish: {} points", s.len());
    }

    #[test]
    fn deviation_guarantee_holds() {
        // A noisy arc.
        let path: Vec<Point2> = (0..60)
            .map(|i| {
                let t = i as f32 / 59.0 * std::f32::consts::PI;
                Point2::new(
                    50.0 * t.cos() + if i % 3 == 0 { 0.8 } else { 0.0 },
                    50.0 * t.sin(),
                )
            })
            .collect();
        for eps in [0.5f32, 2.0, 8.0] {
            let s = simplify_path(&path, eps);
            let dev = max_deviation(&path, &s);
            assert!(
                dev <= eps + 1e-3,
                "eps {eps}: deviation {dev} with {} pts",
                s.len()
            );
        }
        // Larger epsilon keeps fewer points.
        let fine = simplify_path(&path, 0.5).len();
        let coarse = simplify_path(&path, 8.0).len();
        assert!(coarse < fine);
    }

    #[test]
    fn short_paths_unchanged() {
        let p1 = pts(&[(1.0, 2.0)]);
        assert_eq!(simplify_path(&p1, 1.0), p1);
        let p2 = pts(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(simplify_path(&p2, 1.0), p2);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let path = pts(&[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0), (5.0, 5.0)]);
        let s = simplify_path(&path, 0.1);
        assert_eq!(s.first(), path.first());
        assert_eq!(s.last(), path.last());
    }
}
