//! The query engine: a fixed worker pool behind a bounded admission queue.
//!
//! [`Engine::start`] takes ownership of a trained model and a set of named
//! [`VideoIndex`]es and spawns `workers` threads. Queries enter through
//! [`Engine::submit`] (non-blocking admission) or [`Engine::execute`]
//! (submit + wait). Admission is strict: a full queue returns
//! [`EngineError::Overloaded`] immediately — the queue never grows beyond
//! [`EngineConfig::queue_depth`], so an overloaded engine sheds load
//! instead of accumulating unbounded latency.
//!
//! ## Deadlines and cancellation
//!
//! Every admitted query carries a [`CancelToken`]. Its deadline is the
//! per-query deadline if given, else [`EngineConfig::default_deadline`].
//! The token is checked when the query leaves the queue (a query whose
//! deadline passed while waiting is answered
//! [`EngineError::DeadlineExceeded`] without running) and polled
//! cooperatively inside the Matcher's scan, so a deadline that trips
//! mid-search aborts the remaining work promptly. Callers can also cancel
//! explicitly through the [`QueryHandle`].
//!
//! ## Shared-scan fusion
//!
//! When a worker dequeues a query it also drains up to
//! [`EngineConfig::fused_batch`] − 1 queued queries against the *same*
//! dataset and executes them as one fused
//! [`Matcher::search_batch`] call: candidate-segment embeddings depend
//! only on `(index, model, tracks, frame range)`, not on the query, so
//! the fused batch shares one embedding cache and one batched encoder
//! pass. Per-query results are bit-identical to running each query alone
//! (see the core matcher tests), so fusion changes throughput, never
//! answers. `fused_batch` defaults to the worker count: a 1-worker engine
//! executes query-at-a-time, an 8-worker engine amortizes encoder work
//! across up to 8 concurrent queries — which is what makes a wider pool
//! faster even on a single core.
//!
//! In a fused batch the shared scan runs under a batch-wide token whose
//! deadline is the *latest* member deadline (unbounded if any member has
//! none); each member's own token is re-checked afterwards, so a member
//! whose tighter deadline expired mid-batch still reports
//! `DeadlineExceeded` even though the batch kept running for its peers.
//!
//! ## Index-backed datasets
//!
//! [`Engine::start_with_stores`] additionally accepts persistent
//! embedding stores (built offline by `sketchql::vstore::ingest`). A
//! store is warm-validated at startup — it must name a loaded dataset
//! and carry the model's and index's fingerprints — and mismatches are
//! dropped so every query against that dataset falls back to the fused
//! scan path. Queries against a stored dataset skip scan fusion and run
//! individually through [`Matcher::search_with_store`] under their own
//! cancel tokens: the ANN probe plus exact re-rank is cheap enough that
//! sharing an embedding pass buys nothing, and per-member tokens give
//! exact deadline semantics. Store effectiveness is mirrored in plain
//! atomics ([`EngineStats::store_hits`] and friends), so the numbers
//! survive builds with telemetry compiled out.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sketchql::{
    CancelReason, CancelToken, DatasetStore, LearnedSimilarity, MatchError, Matcher, MatcherConfig,
    RetrievedMoment, SimilarityError, TrainedModel, VideoIndex,
};
use sketchql_telemetry::{self as telemetry, names, TraceContext, TraceOutcome};
use sketchql_trajectory::Clip;

/// Bucket bounds (milliseconds) for the queue-wait and execute
/// latency histograms.
const LATENCY_MS_BOUNDS: &[f64] = &[
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
];

/// Bucket bounds for the fused-batch-size histogram.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket bounds (milliseconds) for the deadline-margin histogram:
/// how much headroom a deadlined query finished with (negative = it
/// finished past its deadline).
const DEADLINE_MARGIN_MS_BOUNDS: &[f64] = &[
    -5000.0, -1000.0, -250.0, -50.0, 0.0, 10.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queries waiting for a worker. A submit that finds the
    /// queue at this depth is rejected with [`EngineError::Overloaded`].
    pub queue_depth: usize,
    /// Deadline applied to queries that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Maximum same-dataset queries fused into one shared scan.
    /// `0` means "same as `workers`".
    pub fused_batch: usize,
    /// Matcher search parameters shared by every query. Per-query `top_k`
    /// requests at or below `matcher.top_k` are served by truncating the
    /// ranked list (NMS keeps a greedy prefix, so the truncation is
    /// identical to searching with the smaller `top_k`).
    pub matcher: MatcherConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: None,
            fused_batch: 0,
            matcher: MatcherConfig::default(),
        }
    }
}

/// Errors a query can be answered with.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The admission queue was full; the query was never enqueued.
    Overloaded {
        /// The configured queue bound that was hit.
        queue_depth: usize,
    },
    /// The engine is shutting down and no longer admits queries.
    ShuttingDown,
    /// No dataset with that name is loaded.
    UnknownDataset(String),
    /// The query's deadline passed (in the queue or mid-search).
    DeadlineExceeded,
    /// The query was cancelled through its [`QueryHandle`].
    Cancelled,
    /// The similarity rejected the query itself.
    Similarity(SimilarityError),
    /// The worker executing the query disappeared without answering
    /// (a worker panic; should not happen).
    WorkerLost,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "overloaded: admission queue full ({queue_depth} waiting)"
                )
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::Cancelled => write!(f, "cancelled"),
            EngineError::Similarity(e) => write!(f, "similarity error: {e}"),
            EngineError::WorkerLost => write!(f, "worker lost"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CancelReason> for EngineError {
    fn from(r: CancelReason) -> Self {
        match r {
            CancelReason::Cancelled => EngineError::Cancelled,
            CancelReason::DeadlineExceeded => EngineError::DeadlineExceeded,
        }
    }
}

impl From<MatchError> for EngineError {
    fn from(e: MatchError) -> Self {
        match e {
            MatchError::Similarity(e) => EngineError::Similarity(e),
            MatchError::Cancelled(r) => r.into(),
        }
    }
}

/// One query as submitted to the engine.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Which loaded dataset to search.
    pub dataset: String,
    /// The query clip (a compiled sketch or a canonical event query).
    pub query: Clip,
    /// Truncate results to this many moments (at most the engine's
    /// configured `matcher.top_k`).
    pub top_k: Option<usize>,
    /// Per-query deadline; overrides [`EngineConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Trace id to run under (a wire client's id); `None` mints a fresh
    /// one at admission.
    pub trace: Option<u64>,
}

impl QuerySpec {
    /// A query with no top-k override, no per-query deadline, and a
    /// server-minted trace id.
    pub fn new(dataset: impl Into<String>, query: Clip) -> Self {
        QuerySpec {
            dataset: dataset.into(),
            query,
            top_k: None,
            deadline: None,
            trace: None,
        }
    }
}

/// A successfully executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Retrieved moments, best first.
    pub moments: Vec<RetrievedMoment>,
    /// Time spent waiting for a worker.
    pub queue_wait: Duration,
    /// Time spent executing (shared across a fused batch).
    pub execute: Duration,
    /// How many queries shared the scan (1 = ran alone).
    pub batch_size: usize,
    /// The live trace the query ran under. The wire server enters it
    /// once more to time response serialization, then finalizes it;
    /// for engine-direct callers it finalizes (into the flight
    /// recorder) when the last clone of this result drops.
    pub trace: TraceContext,
}

/// Per-dataset traffic totals, served inside [`EngineStats`] so a
/// live top view can tell which dataset the load lands on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetTraffic {
    /// Dataset name.
    pub name: String,
    /// Queries against this dataset answered successfully.
    pub completed: u64,
    /// Queries against this dataset that failed or were cancelled.
    pub failed: u64,
    /// Queries against this dataset whose deadline expired.
    pub timed_out: u64,
    /// Queries against this dataset shed at admission.
    pub shed: u64,
}

/// A point-in-time view of the engine, also served over the wire.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineStats {
    /// Worker threads.
    pub workers: usize,
    /// Queries currently waiting for a worker.
    pub queued: usize,
    /// Queries currently executing.
    pub in_flight: usize,
    /// Queries admitted since start.
    pub accepted: u64,
    /// Queries answered successfully.
    pub completed: u64,
    /// Queries rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Queries whose deadline expired.
    pub timed_out: u64,
    /// Queries that failed (similarity error or explicit cancel).
    pub failed: u64,
    /// Queries answered from a persistent embedding store (ANN probe +
    /// exact re-rank, no re-embedding).
    pub store_hits: u64,
    /// Queries against a stored dataset that the store could not serve
    /// (multi-object sketch, window-grid mismatch) and that fell back to
    /// a full scan.
    pub store_fallbacks: u64,
    /// Total stored rows scored across all store-served queries.
    pub store_probed: u64,
    /// Per-dataset traffic totals, in dataset-name order. Empty when
    /// talking to a pre-v4 server.
    pub datasets: Vec<DatasetTraffic>,
}

// Hand-written so a v4 client still parses v3 stats: the per-dataset
// breakdown defaults to empty when absent.
impl Deserialize for EngineStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use crate::protocol::{field, obj, opt_field};
        let fields = obj(v, "EngineStats")?;
        Ok(EngineStats {
            workers: field(&fields, "workers")?,
            queued: field(&fields, "queued")?,
            in_flight: field(&fields, "in_flight")?,
            accepted: field(&fields, "accepted")?,
            completed: field(&fields, "completed")?,
            rejected_overload: field(&fields, "rejected_overload")?,
            timed_out: field(&fields, "timed_out")?,
            failed: field(&fields, "failed")?,
            store_hits: field(&fields, "store_hits")?,
            store_fallbacks: field(&fields, "store_fallbacks")?,
            store_probed: field(&fields, "store_probed")?,
            datasets: opt_field(&fields, "datasets")?.unwrap_or_default(),
        })
    }
}

/// A loaded dataset, as listed over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Frames indexed.
    pub frames: u32,
    /// Object trajectories in the index.
    pub tracks: usize,
    /// Whether an ingested embedding store backs this dataset.
    pub stored: bool,
}

/// Handle to an admitted query: wait for the answer or cancel it.
#[derive(Debug)]
pub struct QueryHandle {
    rx: mpsc::Receiver<Result<QueryResult, EngineError>>,
    cancel: CancelToken,
}

impl QueryHandle {
    /// Blocks until the query is answered.
    pub fn wait(self) -> Result<QueryResult, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::WorkerLost))
    }

    /// Requests cancellation; the query answers [`EngineError::Cancelled`]
    /// once the scan observes the token (immediately if still queued).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

struct Job {
    dataset: String,
    query: Clip,
    top_k: Option<usize>,
    cancel: CancelToken,
    enqueued_at: Instant,
    trace: TraceContext,
    tx: mpsc::Sender<Result<QueryResult, EngineError>>,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    in_flight: usize,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    // Store effectiveness lives in plain atomics (not only telemetry
    // counters) so `stats()` keeps working with telemetry compiled out.
    store_hits: AtomicU64,
    store_fallbacks: AtomicU64,
    store_probed: AtomicU64,
}

/// Per-dataset slice of the traffic counters. The dataset set is fixed
/// at start, so the map never grows and lookups are lock-free.
#[derive(Default)]
struct DatasetCounters {
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    matcher: Matcher<LearnedSimilarity>,
    datasets: BTreeMap<String, VideoIndex>,
    stores: BTreeMap<String, DatasetStore>,
    counters: Counters,
    per_dataset: BTreeMap<String, DatasetCounters>,
    fused_batch: usize,
}

impl Shared {
    /// The per-dataset counter slice for `name` (always present: the
    /// dataset was validated at submit).
    fn dataset_counters(&self, name: &str) -> &DatasetCounters {
        self.per_dataset
            .get(name)
            .expect("dataset validated at submit")
    }
}

/// The concurrent query service. See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: EngineConfig,
}

impl Engine {
    /// Builds the engine and spawns its worker pool.
    pub fn start(
        model: TrainedModel,
        datasets: BTreeMap<String, VideoIndex>,
        config: EngineConfig,
    ) -> Engine {
        Engine::start_with_stores(model, datasets, BTreeMap::new(), config)
    }

    /// Like [`Engine::start`], but warm-loads persistent embedding
    /// stores keyed by dataset name. Each store is validated here: it
    /// must name a loaded dataset and carry both the model's and that
    /// index's fingerprints. Stores that don't match are dropped, and
    /// queries against their dataset simply take the fused-scan path —
    /// per-dataset fallback, never a startup failure.
    pub fn start_with_stores(
        model: TrainedModel,
        datasets: BTreeMap<String, VideoIndex>,
        stores: BTreeMap<String, DatasetStore>,
        config: EngineConfig,
    ) -> Engine {
        let mut config = config;
        config.workers = config.workers.max(1);
        if config.fused_batch == 0 {
            config.fused_batch = config.workers;
        }
        let matcher = Matcher::with_config(model.similarity(), config.matcher.clone());
        let stores: BTreeMap<String, DatasetStore> = stores
            .into_iter()
            .filter(|(name, store)| {
                store.matches_model(&matcher.sim)
                    && datasets
                        .get(name)
                        .is_some_and(|idx| store.matches_index(idx))
            })
            .collect();
        let per_dataset = datasets
            .keys()
            .map(|name| (name.clone(), DatasetCounters::default()))
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                in_flight: 0,
            }),
            work_ready: Condvar::new(),
            matcher,
            datasets,
            stores,
            counters: Counters::default(),
            per_dataset,
            fused_batch: config.fused_batch,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sketchql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(workers),
            config,
        }
    }

    /// The engine's effective configuration (zeros resolved to defaults).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Non-blocking admission. Returns a handle to wait on, or an
    /// immediate rejection ([`EngineError::Overloaded`],
    /// [`EngineError::ShuttingDown`], [`EngineError::UnknownDataset`]).
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryHandle, EngineError> {
        if !self.shared.datasets.contains_key(&spec.dataset) {
            return Err(EngineError::UnknownDataset(spec.dataset));
        }
        // The trace is born at admission; shed queries finalize it via
        // its drop safety net (after the queue lock below releases), so
        // they still reach the flight recorder and slow-query log.
        let trace = match spec.trace {
            Some(id) => TraceContext::with_id(id),
            None => TraceContext::new(),
        };
        trace.set_label(spec.dataset.as_str());
        let deadline = spec.deadline.or(self.config.default_deadline);
        let cancel = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().unwrap();
        if !st.accepting {
            trace.set_outcome(TraceOutcome::Shed);
            telemetry::counter(names::SERVER_SHED_SHUTDOWN).inc();
            self.shared
                .dataset_counters(&spec.dataset)
                .shed
                .fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_depth {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_REJECTED_OVERLOAD).inc();
            trace.set_outcome(TraceOutcome::Shed);
            telemetry::counter(names::SERVER_SHED_QUEUE_FULL).inc();
            self.shared
                .dataset_counters(&spec.dataset)
                .shed
                .fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Overloaded {
                queue_depth: self.config.queue_depth,
            });
        }
        st.queue.push_back(Job {
            dataset: spec.dataset,
            query: spec.query,
            top_k: spec.top_k,
            cancel: cancel.clone(),
            enqueued_at: Instant::now(),
            trace,
            tx,
        });
        telemetry::gauge(names::SERVER_QUEUE_DEPTH).set(st.queue.len() as f64);
        self.shared
            .counters
            .accepted
            .fetch_add(1, Ordering::Relaxed);
        telemetry::counter(names::SERVER_ACCEPTED).inc();
        self.shared.work_ready.notify_one();
        Ok(QueryHandle { rx, cancel })
    }

    /// Submits and waits: the blocking convenience path.
    pub fn execute(&self, spec: QuerySpec) -> Result<QueryResult, EngineError> {
        self.submit(spec)?.wait()
    }

    /// Current queue/traffic statistics.
    pub fn stats(&self) -> EngineStats {
        let st = self.shared.state.lock().unwrap();
        let c = &self.shared.counters;
        EngineStats {
            workers: self.config.workers,
            queued: st.queue.len(),
            in_flight: st.in_flight,
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_overload: c.rejected.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            store_hits: c.store_hits.load(Ordering::Relaxed),
            store_fallbacks: c.store_fallbacks.load(Ordering::Relaxed),
            store_probed: c.store_probed.load(Ordering::Relaxed),
            datasets: self
                .shared
                .per_dataset
                .iter()
                .map(|(name, d)| DatasetTraffic {
                    name: name.clone(),
                    completed: d.completed.load(Ordering::Relaxed),
                    failed: d.failed.load(Ordering::Relaxed),
                    timed_out: d.timed_out.load(Ordering::Relaxed),
                    shed: d.shed.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// The loaded datasets, in name order.
    pub fn datasets(&self) -> Vec<DatasetInfo> {
        self.shared
            .datasets
            .iter()
            .map(|(name, idx)| DatasetInfo {
                name: name.clone(),
                frames: idx.frames,
                tracks: idx.tracks.len(),
                stored: self.shared.stores.contains_key(name),
            })
            .collect()
    }

    /// Dataset names backed by a warm-validated embedding store.
    pub fn stored_datasets(&self) -> Vec<String> {
        self.shared.stores.keys().cloned().collect()
    }

    /// Stops admission, drains every already-admitted query, and joins
    /// the worker pool. Idempotent; called by `Drop` as a safety net.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.accepting = false;
            self.shared.work_ready.notify_all();
        }
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker thread body: dequeue, fuse, execute, answer — until shutdown
/// with an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(first) = st.queue.pop_front() {
                    let dataset = first.dataset.clone();
                    let mut batch = vec![first];
                    let mut i = 0;
                    while batch.len() < shared.fused_batch && i < st.queue.len() {
                        if st.queue[i].dataset == dataset {
                            batch.push(st.queue.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                    st.in_flight += batch.len();
                    telemetry::gauge(names::SERVER_QUEUE_DEPTH).set(st.queue.len() as f64);
                    telemetry::gauge(names::SERVER_IN_FLIGHT).set(st.in_flight as f64);
                    break batch;
                }
                if !st.accepting {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        let n = batch.len();
        run_batch(shared, batch);
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= n;
        telemetry::gauge(names::SERVER_IN_FLIGHT).set(st.in_flight as f64);
    }
}

/// Executes one same-dataset batch and answers every member.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    // Queue-expiry check: answer members whose token already tripped
    // without running them.
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        let wait = job.enqueued_at.elapsed();
        telemetry::histogram(names::SERVER_QUEUE_WAIT_MS, LATENCY_MS_BOUNDS)
            .observe(wait.as_secs_f64() * 1e3);
        // The queue wait happened between threads, outside any RAII
        // scope — record it straight into the trace.
        job.trace.record_span(
            names::SERVER_QUEUE_WAIT,
            0,
            job.enqueued_at,
            wait.as_nanos() as u64,
        );
        match job.cancel.check() {
            Ok(()) => live.push((job, wait)),
            Err(reason) => {
                if reason == CancelReason::DeadlineExceeded {
                    telemetry::counter(names::SERVER_SHED_DEADLINE_QUEUE).inc();
                }
                finish_err(shared, &job, reason.into());
            }
        }
    }
    if live.is_empty() {
        return;
    }
    let index = shared
        .datasets
        .get(&live[0].0.dataset)
        .expect("dataset validated at submit");

    // Index-backed datasets skip scan fusion: each member runs its own
    // ANN probe + exact re-rank under its own token. The probe touches
    // no encoder, so there is no embedding work to share, and per-member
    // tokens give exact deadline/cancel semantics.
    if let Some(store) = shared.stores.get(&live[0].0.dataset) {
        for (job, wait) in live {
            // Route this worker's spans (store probe, matcher stages)
            // into the query's trace for the duration of the execute.
            let trace_guard = job.trace.enter();
            let exec_span = telemetry::span(names::SERVER_EXECUTE);
            let started = Instant::now();
            let result = shared
                .matcher
                .search_with_store(index, store, &job.query, &job.cancel);
            let execute = started.elapsed();
            drop(exec_span);
            drop(trace_guard);
            telemetry::histogram(names::SERVER_EXECUTE_MS, LATENCY_MS_BOUNDS)
                .observe(execute.as_secs_f64() * 1e3);
            observe_deadline_margin(&job);
            match result {
                Ok(search) => {
                    let c = &shared.counters;
                    if search.from_store {
                        c.store_hits.fetch_add(1, Ordering::Relaxed);
                        c.store_probed.fetch_add(search.probed, Ordering::Relaxed);
                    } else {
                        c.store_fallbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut moments = search.moments;
                    if let Some(k) = job.top_k {
                        moments.truncate(k);
                    }
                    c.completed.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter(names::SERVER_COMPLETED).inc();
                    shared
                        .dataset_counters(&job.dataset)
                        .completed
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = job.tx.send(Ok(QueryResult {
                        moments,
                        queue_wait: wait,
                        execute,
                        batch_size: 1,
                        trace: job.trace.clone(),
                    }));
                }
                Err(e) => finish_err(shared, &job, e.into()),
            }
        }
        return;
    }

    telemetry::histogram(names::SERVER_FUSED_BATCH, BATCH_BOUNDS).observe(live.len() as f64);
    let batch_size = live.len();
    for (job, _) in &live {
        job.trace.set_batch_size(batch_size);
    }
    // Enter every member's trace: the shared scan's spans (embed, scan,
    // rank) are delivered to each member, so every fused query still
    // carries a complete span tree of the work done on its behalf.
    let trace_guards: Vec<_> = live.iter().map(|(job, _)| job.trace.enter()).collect();
    let exec_span = telemetry::span(names::SERVER_EXECUTE);
    let fusion_span = if batch_size > 1 {
        Some(telemetry::span(names::SERVER_FUSION))
    } else {
        None
    };
    let started = Instant::now();
    let results = if live.len() == 1 {
        // A lone query runs under its own token, so explicit cancellation
        // and the deadline both stop the scan directly.
        let (job, _) = &live[0];
        vec![shared
            .matcher
            .search_with_cancel(index, &job.query, &job.cancel)]
    } else {
        // Fused: one shared scan under a batch-wide token. The batch
        // deadline is the latest member deadline so no member is cut
        // short by a peer; tighter member deadlines are re-checked below.
        let mut latest = Some(Instant::now());
        for (job, _) in &live {
            match (job.cancel.deadline(), latest) {
                (Some(d), Some(l)) => latest = Some(l.max(d)),
                _ => latest = None,
            }
        }
        let batch_token = match latest {
            Some(at) => CancelToken::with_deadline_at(at),
            None => CancelToken::new(),
        };
        let queries: Vec<&Clip> = live.iter().map(|(job, _)| &job.query).collect();
        shared.matcher.search_batch(index, &queries, &batch_token)
    };
    let execute = started.elapsed();
    drop(fusion_span);
    drop(exec_span);
    drop(trace_guards);
    telemetry::histogram(names::SERVER_EXECUTE_MS, LATENCY_MS_BOUNDS)
        .observe(execute.as_secs_f64() * 1e3);

    for ((job, wait), result) in live.into_iter().zip(results) {
        // A member whose own token tripped during a fused scan reports
        // its own reason even though the batch ran on for its peers.
        let result = match job.cancel.check() {
            Ok(()) => result,
            Err(reason) => Err(MatchError::Cancelled(reason)),
        };
        observe_deadline_margin(&job);
        match result {
            Ok(mut moments) => {
                if let Some(k) = job.top_k {
                    moments.truncate(k);
                }
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter(names::SERVER_COMPLETED).inc();
                shared
                    .dataset_counters(&job.dataset)
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                let _ = job.tx.send(Ok(QueryResult {
                    moments,
                    queue_wait: wait,
                    execute,
                    batch_size,
                    trace: job.trace.clone(),
                }));
            }
            Err(e) => finish_err(shared, &job, e.into()),
        }
    }
}

/// Records how much deadline headroom `job` ended with (negative when
/// it ended past its deadline). No-op for queries without a deadline.
fn observe_deadline_margin(job: &Job) {
    if !telemetry::is_enabled() {
        return;
    }
    let Some(deadline) = job.cancel.deadline() else {
        return;
    };
    let now = Instant::now();
    let margin_ms = if deadline >= now {
        deadline.duration_since(now).as_secs_f64() * 1e3
    } else {
        -(now.duration_since(deadline).as_secs_f64() * 1e3)
    };
    telemetry::histogram(names::SERVER_DEADLINE_MARGIN_MS, DEADLINE_MARGIN_MS_BOUNDS)
        .observe(margin_ms);
}

/// Answers `job` with `err`, stamps the trace's outcome, and bumps the
/// matching failure counter.
fn finish_err(shared: &Shared, job: &Job, err: EngineError) {
    let per_dataset = shared.dataset_counters(&job.dataset);
    match err {
        EngineError::DeadlineExceeded => {
            shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            per_dataset.timed_out.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_TIMED_OUT).inc();
            job.trace.set_outcome(TraceOutcome::DeadlineExceeded);
        }
        EngineError::Cancelled => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            per_dataset.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_FAILED).inc();
            telemetry::counter(names::SERVER_SHED_CANCELLED).inc();
            job.trace.set_outcome(TraceOutcome::Cancelled);
        }
        _ => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            per_dataset.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::SERVER_FAILED).inc();
            job.trace.set_outcome(TraceOutcome::Failed);
        }
    }
    let _ = job.tx.send(Err(err));
}
