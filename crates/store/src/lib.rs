//! # sketchql-store
//!
//! The persistent embedding store behind SketchQL's index-backed search
//! path. The learned similarity embeds candidate clips independently of
//! the query (similarity is the cosine of separately-computed
//! embeddings), so candidate-window embeddings are query-agnostic: they
//! can be computed once at ingest time, persisted, and served to every
//! future query instead of being recomputed per search and thrown away at
//! process exit.
//!
//! Two layers, both dependency-free (`std` only):
//!
//! - [`format`]: the versioned, checksummed binary columnar on-disk
//!   format ([`EmbeddingStore`]). One file holds the window metadata
//!   columns (track id, class, start, end) plus a flat `f32` vector
//!   column, with an [`FNV-1a`](Fnv64) checksum over the whole payload so
//!   truncation and corruption are detected at load, not at query time.
//! - [`ann`]: an IVF-style approximate-nearest-neighbor index
//!   ([`IvfIndex`]) — a k-means coarse quantizer over the stored vectors
//!   with a configurable probe count. Probing narrows the candidate set;
//!   callers re-rank the probed rows with the *exact* cosine, so any
//!   moment the index-backed path reports scores bit-identically to the
//!   full-scan path.
//!
//! The ingest pipeline itself (sliding-window enumeration + batched
//! embedding) lives in the core crate, which owns the window semantics;
//! this crate only persists and retrieves what ingest produces.

#![warn(missing_docs)]

pub mod ann;
pub mod format;
pub mod manifest;
pub mod mmap;
pub mod shard;

pub use ann::{AnnConfig, CoarseQuantizer, IvfIndex};
pub use format::{
    EmbeddingStore, StoreError, StoreHeader, StoreMeta, StoreRow, FORMAT_VERSION, MAGIC,
};
pub use manifest::{
    hex_u64, parse_hex_u64, Manifest, ManifestShard, MANIFEST_FILE, MANIFEST_VERSION, SHARD_SET_EXT,
};
pub use mmap::Mmap;
pub use shard::{
    read_shard_header, LoadedShard, ShardData, ShardHeader, SHARD_EXT, SHARD_MAGIC, SHARD_VERSION,
};

/// Incremental FNV-1a 64-bit hasher.
///
/// Used both for the store file checksum and (by the core crate) for the
/// model / index fingerprints recorded in [`StoreMeta`]. FNV-1a is not
/// cryptographic; it guards against truncation, bit rot, and accidental
/// mismatches, not adversaries.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f32` by bit pattern, so the hash is exact (no rounding).
    pub fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for the canonical FNV-1a 64 test strings.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv64::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
