//! Optimizers. SketchQL trains its encoder with Adam plus optional decoupled
//! weight decay (AdamW) and global-norm gradient clipping.

use crate::modules::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            grad_clip: 1.0,
        }
    }
}

/// Adam optimizer state (per-parameter first/second moments).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// The optimizer's hyper-parameters.
    pub config: AdamConfig,
    step: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Creates an optimizer with fresh (zero) moments.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            step: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update. Parameters without a gradient entry are left
    /// untouched. Returns the (pre-clip) global gradient norm.
    pub fn step(&mut self, store: &mut ParamStore, grads: &HashMap<String, Tensor>) -> f32 {
        self.step_scaled(store, grads, 1.0)
    }

    /// Like [`Adam::step`] with a multiplier on the learning rate — the
    /// hook [`crate::schedule::LrSchedule`]s plug into.
    pub fn step_scaled(
        &mut self,
        store: &mut ParamStore,
        grads: &HashMap<String, Tensor>,
        lr_scale: f32,
    ) -> f32 {
        self.step += 1;
        let t = self.step as f32;
        let c = self.config;

        // Global norm for clipping / monitoring.
        let mut sq_sum = 0.0f64;
        for g in grads.values() {
            sq_sum += g
                .data
                .iter()
                .map(|x| (*x as f64) * (*x as f64))
                .sum::<f64>();
        }
        let global_norm = (sq_sum.sqrt()) as f32;
        let clip_scale = if c.grad_clip > 0.0 && global_norm > c.grad_clip {
            c.grad_clip / global_norm
        } else {
            1.0
        };

        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);

        // Deterministic order: iterate names sorted.
        let mut names: Vec<&String> = grads.keys().collect();
        names.sort();
        for name in names {
            let g = &grads[name];
            let p = store.get_mut(name);
            let m = self
                .m
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.rows, g.cols));
            let v = self
                .v
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.rows, g.cols));
            for i in 0..g.data.len() {
                let gi = g.data[i] * clip_scale;
                m.data[i] = c.beta1 * m.data[i] + (1.0 - c.beta1) * gi;
                v.data[i] = c.beta2 * v.data[i] + (1.0 - c.beta2) * gi * gi;
                let mhat = m.data[i] / bias1;
                let vhat = v.data[i] / bias2;
                let mut upd = mhat / (vhat.sqrt() + c.eps);
                if c.weight_decay > 0.0 {
                    upd += c.weight_decay * p.data[i];
                }
                p.data[i] -= c.lr * lr_scale * upd;
            }
        }
        global_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::{Graph, Linear, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize ||x||^2 for a single 1x4 "parameter".
        let mut store = ParamStore::new();
        store.insert("x", Tensor::from_vec(1, 4, vec![1.0, -2.0, 3.0, -4.0]));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.05,
            ..Default::default()
        });
        for _ in 0..400 {
            let mut g = Graph::new(&store);
            let x = g.param("x");
            let sq = g.tape.mul(x, x);
            let loss = g.tape.mean_all(sq);
            let grads = g.grads_by_name(loss);
            adam.step(&mut store, &grads);
        }
        assert!(
            store.get("x").norm() < 0.05,
            "norm {}",
            store.get("x").norm()
        );
        assert_eq!(adam.steps(), 400);
    }

    #[test]
    fn adam_fits_linear_regression() {
        // y = x @ W* ; recover W* from noisy-free samples.
        let mut rng = StdRng::seed_from_u64(3);
        let w_star = Tensor::from_vec(3, 1, vec![0.5, -1.0, 2.0]);
        let xs: Vec<Tensor> = (0..32).map(|_| Tensor::xavier(1, 3, &mut rng)).collect();
        let ys: Vec<Tensor> = xs.iter().map(|x| x.matmul(&w_star)).collect();

        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "fit", 3, 1);
        let mut adam = Adam::new(AdamConfig {
            lr: 0.05,
            ..Default::default()
        });
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new(&store);
            let mut per_sample = Vec::new();
            for (x, y) in xs.iter().zip(&ys) {
                let xi = g.input(x.clone());
                let yi = g.input(y.clone());
                let pred = lin.forward(&mut g, xi);
                let diff = g.tape.sub(pred, yi);
                let sq = g.tape.mul(diff, diff);
                per_sample.push(sq);
            }
            let all = g.tape.concat_rows(&per_sample);
            let loss = g.tape.mean_all(all);
            last_loss = g.tape.value(loss).item();
            let grads = g.grads_by_name(loss);
            adam.step(&mut store, &grads);
        }
        assert!(last_loss < 1e-3, "regression did not converge: {last_loss}");
        let w = store.get("fit.w");
        for (a, b) in w.data.iter().zip(&w_star.data) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn grad_clip_limits_update_magnitude() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::zeros(1, 2));
        let mut adam = Adam::new(AdamConfig {
            lr: 1.0,
            grad_clip: 0.001,
            ..Default::default()
        });
        let mut grads = HashMap::new();
        grads.insert("x".to_string(), Tensor::from_vec(1, 2, vec![1e6, -1e6]));
        let norm = adam.step(&mut store, &grads);
        assert!(norm > 1e5);
        // Even with lr=1 and a huge gradient, Adam's normalized update is
        // bounded by lr; clipping keeps the moments sane too.
        assert!(store.get("x").data.iter().all(|x| x.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient_signal() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::ones(1, 2));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            grad_clip: 0.0,
            ..Default::default()
        });
        let mut grads = HashMap::new();
        grads.insert("x".to_string(), Tensor::zeros(1, 2));
        for _ in 0..10 {
            adam.step(&mut store, &grads);
        }
        assert!(store.get("x").data[0] < 1.0);
    }

    #[test]
    fn scaled_step_with_zero_lr_is_a_noop_on_params() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::ones(1, 2));
        let mut adam = Adam::new(AdamConfig::default());
        let mut grads = HashMap::new();
        grads.insert("x".to_string(), Tensor::ones(1, 2));
        adam.step_scaled(&mut store, &grads, 0.0);
        assert_eq!(store.get("x").data, vec![1.0, 1.0]);
        // Moments still advanced: a later full step behaves as step 2.
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn missing_grads_leave_params_untouched() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::ones(1, 1));
        store.insert("b", Tensor::ones(1, 1));
        let mut adam = Adam::new(AdamConfig::default());
        let mut grads = HashMap::new();
        grads.insert("a".to_string(), Tensor::ones(1, 1));
        adam.step(&mut store, &grads);
        assert_ne!(store.get("a").data[0], 1.0);
        assert_eq!(store.get("b").data[0], 1.0);
    }
}
