//! The optional Tuner (§2.2): improving retrieval with explicit user
//! feedback.
//!
//! Runs a hard query (U-turn, which shares a prefix with left turns), lets
//! a simulated user label the top results against ground truth, and shows
//! retrieval quality before and after (a) prototype re-ranking and
//! (b) triplet fine-tuning.
//!
//! ```text
//! cargo run --release --example tuner_feedback
//! ```

use sketchql::prelude::*;
use sketchql_datasets::{evaluate_retrieval, query_clip, EventKind, PredictedMoment, SceneFamily};

fn report(
    results: &[sketchql::RetrievedMoment],
    truth: &[&sketchql_datasets::EventAnnotation],
    label: &str,
) {
    let preds: Vec<PredictedMoment> = results
        .iter()
        .map(|m| PredictedMoment {
            start: m.start,
            end: m.end,
            score: m.score,
        })
        .collect();
    let r = evaluate_retrieval(&preds, truth);
    println!(
        "  {label:<18} P@{}: {:.2}  recall {:.2}  AP {:.2}",
        r.num_truth, r.precision_at_k, r.recall, r.average_precision
    );
}

fn main() {
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 55);
    sq.upload_dataset("traffic", &video);
    let truth = video.events_of(EventKind::UTurn);
    println!(
        "Query: U-turn. {} ground-truth events at {:?}\n",
        truth.len(),
        truth.iter().map(|t| (t.start, t.end)).collect::<Vec<_>>()
    );

    let query = query_clip(EventKind::UTurn);
    let results = sq.run_query("traffic", &query).unwrap();
    println!("Zero-shot retrieval:");
    report(&results, &truth, "zero-shot");

    // The simulated user inspects the top 6 results and labels each by
    // whether it truly overlaps a U-turn (what a person would do in the
    // result window).
    let mut feedback = Vec::new();
    for m in results.iter().take(6) {
        let relevant = truth.iter().any(|t| t.temporal_iou(m.start, m.end) >= 0.3);
        let clip = sq.moment_clip("traffic", m).unwrap();
        feedback.push(Feedback { clip, relevant });
    }
    let n_pos = feedback.iter().filter(|f| f.relevant).count();
    println!(
        "\nUser feedback on top-6: {} relevant, {} not relevant",
        n_pos,
        feedback.len() - n_pos
    );

    // (a) Training-free prototype re-ranking of the existing result list.
    let cfg = TunerConfig::default();
    let reranker = sq.feedback_reranker(&feedback, &cfg);
    let mut reranked: Vec<_> = results.clone();
    for m in &mut reranked {
        if let Some(e) = sq
            .moment_clip("traffic", m)
            .ok()
            .and_then(|c| sq.model.embed(&c))
        {
            m.score = reranker.adjust(m.score, &e);
        }
    }
    reranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    println!("\nAfter prototype re-ranking:");
    report(&reranked, &truth, "reranked");

    // (b) Triplet fine-tuning of the encoder itself, then re-querying.
    let used = sq.apply_feedback(&query, &feedback, &cfg);
    let retried = sq.run_query("traffic", &query).unwrap();
    println!("\nAfter fine-tuning on {used} feedback items (fresh query):");
    report(&retried, &truth, "fine-tuned");
}
