//! Video preprocessing: from raw video (ground-truth bbox streams standing
//! in for decoded frames) to an indexed set of object trajectories.
//!
//! This is SketchQL's "initialization" step after "Upload Dataset" (§3.1
//! Step 1): run the detector + tracker once per video and keep the tracked
//! trajectories for all subsequent queries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sketchql_datasets::SyntheticVideo;
use sketchql_telemetry::{self as telemetry, names};
use sketchql_tracker::{track_detections, DetectorConfig, DetectorSim, TrackerConfig};
use sketchql_trajectory::{Clip, ObjectClass, Trajectory};

/// Minimum length (observations) for a track to enter the index.
pub const MIN_TRACK_LEN: usize = 8;

/// Preprocessed form of one video: its tracked object trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoIndex {
    /// Dataset name.
    pub name: String,
    /// Tracked trajectories (tracker output, not ground truth).
    pub tracks: Vec<Trajectory>,
    /// Total frames in the video.
    pub frames: u32,
    /// Frame width.
    pub frame_width: f32,
    /// Frame height.
    pub frame_height: f32,
    /// Frames per second.
    pub fps: f32,
}

impl VideoIndex {
    /// Builds an index by running the (simulated) detector and the
    /// ByteTrack tracker over a video — the realistic preprocessing path.
    pub fn build(
        video: &SyntheticVideo,
        detector: DetectorConfig,
        tracker: TrackerConfig,
        seed: u64,
    ) -> Self {
        let _span = telemetry::span(names::INDEX_BUILD);
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = DetectorSim::new(detector);
        let det_frames = sim.detect_clip(&video.truth, video.frames, &mut rng);
        let tracks = track_detections(&det_frames, tracker, MIN_TRACK_LEN);
        telemetry::counter(names::FRAMES_PREPROCESSED).add(video.frames as u64);
        telemetry::counter(names::TRACKS_BUILT).add(tracks.len() as u64);
        VideoIndex {
            name: video.name.clone(),
            tracks,
            frames: video.frames,
            frame_width: video.truth.frame_width,
            frame_height: video.truth.frame_height,
            fps: video.fps,
        }
    }

    /// Like [`VideoIndex::build`], additionally applying the tracker
    /// post-processing passes (fragment stitching + gap interpolation) —
    /// recovers single trajectories across long occlusions at a small risk
    /// of over-merging.
    pub fn build_with_postprocess(
        video: &SyntheticVideo,
        detector: DetectorConfig,
        tracker: TrackerConfig,
        stitch: sketchql_tracker::StitchConfig,
        seed: u64,
    ) -> Self {
        let mut idx = VideoIndex::build(video, detector, tracker, seed);
        idx.tracks = sketchql_tracker::stitch_fragments(&idx.tracks, &stitch);
        idx.tracks = sketchql_tracker::interpolate_tracks(&idx.tracks);
        idx
    }

    /// Builds an index directly from ground-truth trajectories (perfect
    /// tracking) — the oracle-preprocessing ablation.
    pub fn from_truth(video: &SyntheticVideo) -> Self {
        VideoIndex {
            name: video.name.clone(),
            tracks: video
                .truth
                .objects
                .iter()
                .filter(|t| t.len() >= MIN_TRACK_LEN)
                .cloned()
                .collect(),
            frames: video.frames,
            frame_width: video.truth.frame_width,
            frame_height: video.truth.frame_height,
            fps: video.fps,
        }
    }

    /// Wraps an arbitrary tracked clip (e.g. for unit tests).
    pub fn from_clip(name: &str, clip: &Clip, frames: u32, fps: f32) -> Self {
        VideoIndex {
            name: name.to_string(),
            tracks: clip.objects.clone(),
            frames,
            frame_width: clip.frame_width,
            frame_height: clip.frame_height,
            fps,
        }
    }

    /// Tracks whose class is accepted by `query_class` (`Any` accepts all)
    /// and that overlap the frame window `[start, end]` for at least
    /// `min_overlap` frames.
    pub fn tracks_in_window(
        &self,
        query_class: ObjectClass,
        start: u32,
        end: u32,
        min_overlap: u32,
    ) -> Vec<&Trajectory> {
        self.tracks
            .iter()
            .filter(|t| query_class.matches(&t.class))
            .filter(|t| match (t.start_frame(), t.end_frame()) {
                (Some(s), Some(e)) => {
                    let lo = s.max(start);
                    let hi = e.min(end);
                    hi >= lo && (hi - lo + 1) >= min_overlap
                }
                _ => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchql_datasets::{generate_video, SceneFamily, VideoConfig};
    use sketchql_tracker::evaluate_tracking;
    use sketchql_trajectory::{BBox, TrajPoint};

    fn small_video() -> SyntheticVideo {
        let cfg = VideoConfig {
            family: SceneFamily::UrbanIntersection,
            events_per_kind: 1,
            distractors: 2,
            fps: 30.0,
        };
        generate_video(cfg, 42, &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn from_truth_preserves_long_tracks() {
        let v = small_video();
        let idx = VideoIndex::from_truth(&v);
        let long_truth = v
            .truth
            .objects
            .iter()
            .filter(|t| t.len() >= MIN_TRACK_LEN)
            .count();
        assert_eq!(idx.tracks.len(), long_truth);
        assert_eq!(idx.frames, v.frames);
    }

    #[test]
    fn build_produces_usable_tracks() {
        let v = small_video();
        let idx = VideoIndex::build(&v, DetectorConfig::default(), TrackerConfig::default(), 7);
        assert!(!idx.tracks.is_empty());
        let report = evaluate_tracking(&v.truth, &idx.tracks);
        assert!(
            report.coverage > 0.5,
            "tracker coverage too low: {:?}",
            report
        );
        assert!(
            report.precision > 0.6,
            "tracker precision too low: {:?}",
            report
        );
    }

    #[test]
    fn build_with_perfect_detector_nearly_matches_truth() {
        let v = small_video();
        let idx = VideoIndex::build(&v, DetectorConfig::perfect(), TrackerConfig::default(), 7);
        let report = evaluate_tracking(&v.truth, &idx.tracks);
        assert!(report.coverage > 0.8, "coverage {:?}", report);
    }

    #[test]
    fn postprocess_never_increases_track_count() {
        let v = small_video();
        let plain = VideoIndex::build(
            &v,
            DetectorConfig::at_noise_level(2.0),
            TrackerConfig::default(),
            7,
        );
        let post = VideoIndex::build_with_postprocess(
            &v,
            DetectorConfig::at_noise_level(2.0),
            TrackerConfig::default(),
            sketchql_tracker::StitchConfig::default(),
            7,
        );
        assert!(post.tracks.len() <= plain.tracks.len());
        // Post-processed tracks are gap-free.
        for t in &post.tracks {
            assert!(t.max_gap() <= 1, "track {} has gap {}", t.id, t.max_gap());
        }
        // Still decent tracking quality.
        let r = evaluate_tracking(&v.truth, &post.tracks);
        assert!(r.coverage > 0.4, "{r:?}");
    }

    #[test]
    fn tracks_in_window_filters_class_and_overlap() {
        let car = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (0..50)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32, 0.0, 10.0, 10.0)))
                .collect(),
        );
        let person = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (100..150)
                .map(|f| TrajPoint::new(f, BBox::new(f as f32, 0.0, 5.0, 10.0)))
                .collect(),
        );
        let clip = Clip::new(640.0, 480.0, vec![car, person]);
        let idx = VideoIndex::from_clip("t", &clip, 150, 30.0);

        let cars = idx.tracks_in_window(ObjectClass::Car, 0, 40, 20);
        assert_eq!(cars.len(), 1);
        let people_early = idx.tracks_in_window(ObjectClass::Person, 0, 40, 10);
        assert!(people_early.is_empty());
        let any_late = idx.tracks_in_window(ObjectClass::Any, 110, 140, 10);
        assert_eq!(any_late.len(), 1);
        let any_all = idx.tracks_in_window(ObjectClass::Any, 0, 149, 10);
        assert_eq!(any_all.len(), 2);
        // Overlap threshold enforced.
        let strict = idx.tracks_in_window(ObjectClass::Car, 45, 60, 10);
        assert!(strict.is_empty());
    }
}
