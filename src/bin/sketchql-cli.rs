//! `sketchql-cli` — a command-line front end for the SketchQL library.
//!
//! ```text
//! sketchql-cli generate --family urban_intersection --seed 7 --out video.json
//! sketchql-cli train --out model.json [--steps 600]
//! sketchql-cli query --video video.json --model model.json --event left_turn [--baseline dtw] [--top-k 5] [--oracle-tracks] [--stats]
//! sketchql-cli ingest --video video.json --model model.json --dataset traffic --store-dir stores
//! sketchql-cli append --video grown.json --model model.json --dataset traffic --store-dir stores
//! sketchql-cli stats --video video.json --model model.json --event left_turn [--format json|prometheus]
//! sketchql-cli render --video video.json --start 100 --end 199 [--track 3]
//! sketchql-cli info --video video.json
//! sketchql-cli serve --model model.json --videos traffic=video.json [--store-dir stores] [--addr 127.0.0.1:7878] [--workers 4]
//! sketchql-cli client --addr 127.0.0.1:7878 --action query --dataset traffic --event left_turn
//! sketchql-cli register --addr 127.0.0.1:7878 --dataset traffic --event left_turn
//! sketchql-cli watch --addr 127.0.0.1:7878 --registration-id 1
//! ```
//!
//! Videos and models are JSON artifacts so pipelines can be scripted and
//! inspected; embedding stores are the binary `.skstore` format from the
//! `sketchql-store` crate, written once by `ingest` and served without
//! re-embedding by `serve --store-dir` / `query --store-dir`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::telemetry::{self, Recorder};
use sketchql::training::{train_with_callback, TrainedModel, TrainingConfig};
use sketchql::{
    append_frames, ingest, ingest_sharded, load_store_tier_dir, save_store_dir, shard_set_dir_name,
    CancelToken, ClassicalSimilarity, IngestConfig, IngestProgress, Matcher, MatcherConfig,
    RetrievedMoment, ShardSet, VideoIndex,
};
use sketchql_datasets::{
    extend_video, generate_video, query_clip, EventKind, ExtendConfig, SceneFamily, SyntheticVideo,
    VideoConfig,
};
use sketchql_server::{
    ClassConfig, Client, Engine, EngineConfig, MetricsListener, QueryOptions, SchedMode,
    SchedPolicy, Server,
};
use sketchql_tracker::{DetectorConfig, TrackerConfig};
use sketchql_trajectory::{render_storyboard, DistanceKind};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "query" => cmd_query(&flags),
        "ingest" => cmd_ingest(&flags),
        "append" => cmd_append(&flags),
        "stats" => cmd_stats(&flags),
        "render" => cmd_render(&flags),
        "info" => cmd_info(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "register" => cmd_register(&flags),
        "watch" => cmd_watch(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
sketchql-cli — zero-shot video moment querying with sketches

commands:
  generate --out <file> [--family <name>] [--seed <n>] [--events <n>] [--distractors <n>]
           [--extend <base-video>] stream a continuation: the base's
           frames carry over verbatim, new events play out after them
  train    --out <file> [--steps <n>] [--seed <n>]
  query    --video <file> --event <kind> [--model <file>] [--baseline <dtw|frechet|...>]
           [--rules] [--top-k <n>] [--oracle-tracks] [--stats] [--no-embed-cache]
           [--store-dir <dir>] [--nprobe <n>]
  ingest   --video <file> --model <file> [--dataset <name>] [--store-dir <dir>]
           [--events <a,b,...>] [--threads <n>] [--oracle-tracks] [--verify]
           precompute window embeddings into <dir>/<dataset>.skstore
           [--shard-frames <n>] shard by frame range instead: parallel
           ingest into <dir>/<dataset>.skset/ (shards + manifest),
           served memory-mapped with lazy shard loading; --verify
           re-opens the written output and checks every checksum
  append   --video <file> --model <file> --dataset <name> [--store-dir <dir>]
           [--threads <n>] [--oracle-tracks] [--verify]
           commit a live ingest epoch: embed only the windows the new
           frames of <file> own and rewrite the tail shard(s) of
           <dir>/<dataset>.skset/ — the result is byte-identical to a
           from-scratch ingest of the grown video, published by one
           atomic manifest rename
  stats    same flags as query; runs it quietly and dumps the metric
           registry [--format <json|prometheus>]
  render   --video <file> [--start <frame>] [--end <frame>]
  info     --video <file> | --model <file>
  serve    --model <file> --videos <name=file,name=file,...>
           [--store-dir <dir>] [--nprobe <n>]
           [--addr 127.0.0.1:7878] [--workers <n>] [--queue-depth <n>]
           [--deadline-ms <n>] [--fused-batch <n>] [--top-k <n>] [--oracle-tracks]
           [--sched <fifo|deadline>] queue discipline (default deadline)
           [--aging-ms <n>] queue-wait ms per +1 priority promotion credit
           [--classes <name[:prio[:rate[:burst[:quota]]]],...>] admission
           classes: base priority, token-bucket rate (q/s) and burst,
           per-class queue quota (0 = unlimited)
           [--metrics-addr <host:port>] prometheus scrape endpoint
           [--slow-query-ms <n>] [--slow-query-log <file>] JSON-lines slow log
           [--slow-query-log-max-bytes <n>] rotate the slow log at this size
           [--flight-traces <n>] flight-recorder capacity (default 256)
           [--profile-hz <n>] continuous profiler rate (default 19, 0 = off)
           [--max-resident-shards <n>] LRU-evict mapped shards beyond n
           [--registry <file>] persist standing queries across restarts
           [--live-poll-ms <n>] poll sharded stores for appended epochs
           and evaluate standing queries against each new epoch
  client   --addr <host:port>
           --action <ping|list|stats|query|trace|metrics|profile|top|shutdown>
           [--dataset <name>] [--event <kind>] [--top-k <n>] [--deadline-ms <n>]
           [--class <name>] [--priority <n>] admission class / base priority
           [--trace-id <hex>] [--limit <n>] for --action trace
           [--seconds <n>] [--hz <n>] for --action profile (0/absent = the
           server's continuous aggregate; positive = a fresh window)
           [--interval-ms <n>] [--iterations <n>] for --action top
  register --addr <host:port> --dataset <name> --event <kind>
           [--min-score <f>] [--top-k <n>]
           register a standing query; prints the registration id
  watch    --addr <host:port> --registration-id <n>
           [--interval-ms <n>] [--iterations <n>] [--max <n>]
           poll a standing query's notifications and print matches as
           ingest epochs land (0 iterations = until interrupted)

families: urban_intersection, parking_lot, plaza
events:   left_turn right_turn u_turn stop_and_go lane_change
          perpendicular_crossing overtake loiter";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                "true".to_string()
            };
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn req<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

fn parse_family(name: &str) -> Result<SceneFamily, String> {
    SceneFamily::ALL
        .iter()
        .copied()
        .find(|f| f.name() == name)
        .ok_or_else(|| format!("unknown family {name:?}"))
}

fn parse_event(name: &str) -> Result<EventKind, String> {
    EventKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown event {name:?}"))
}

fn load_video(path: &str) -> Result<SyntheticVideo, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("{path}: {e}"))
}

fn build_index(video: &SyntheticVideo, oracle: bool) -> VideoIndex {
    if oracle {
        VideoIndex::from_truth(video)
    } else {
        VideoIndex::build(
            video,
            DetectorConfig::default(),
            TrackerConfig::default(),
            1,
        )
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = req(flags, "out")?;
    let seed: u64 = num(flags, "seed", 1)?;
    let events = num(flags, "events", 2)?;
    let distractors = num(flags, "distractors", 10)?;
    let video = if let Some(base_path) = flags.get("extend") {
        // Streamed continuation: the base video's frames are carried
        // over verbatim (the contract `append` relies on), new events
        // and distractors play out after them.
        let base = load_video(base_path)?;
        let cfg = ExtendConfig {
            events_per_kind: events,
            distractors,
        };
        extend_video(&base, cfg, &mut StdRng::seed_from_u64(seed))
    } else {
        let family = parse_family(
            flags
                .get("family")
                .map_or("urban_intersection", String::as_str),
        )?;
        let cfg = VideoConfig {
            family,
            events_per_kind: events,
            distractors,
            fps: 30.0,
        };
        generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed))
    };
    let json = serde_json::to_string(&video).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} frames, {} objects, {} annotated events",
        video.frames,
        video.truth.num_objects(),
        video.events.len()
    );
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = req(flags, "out")?;
    let mut cfg = TrainingConfig::small();
    cfg.steps = num(flags, "steps", cfg.steps)?;
    cfg.seed = num(flags, "seed", cfg.seed)?;
    println!(
        "training encoder (d_model {}, {} layers) for {} steps...",
        cfg.encoder.d_model, cfg.encoder.layers, cfg.steps
    );
    let every = (cfg.steps / 10).max(1);
    let model = train_with_callback(cfg, |step, loss| {
        if step % every == 0 {
            println!("  step {step:>5}  loss {loss:.3}");
        }
    });
    model.save(Path::new(out)).map_err(|e| e.to_string())?;
    println!("wrote {out} ({} parameters)", model.store.num_scalars());
    Ok(())
}

/// The `query`/`stats` pipeline: load the video, build an index, and run
/// the selected matcher. The whole run is bracketed by a [`Recorder`] so
/// the caller gets a per-query report alongside the results.
fn execute_query(
    flags: &HashMap<String, String>,
    quiet: bool,
) -> Result<
    (
        SyntheticVideo,
        EventKind,
        Vec<RetrievedMoment>,
        telemetry::QueryReport,
    ),
    String,
> {
    let video = load_video(req(flags, "video")?)?;
    let kind = parse_event(req(flags, "event")?)?;
    let top_k: usize = num(flags, "top-k", 5)?;
    let query = query_clip(kind);

    let recorder = Recorder::begin();
    let index = build_index(&video, flags.contains_key("oracle-tracks"));
    if !quiet {
        println!(
            "index: {} tracks over {} frames ({})",
            index.tracks.len(),
            index.frames,
            if flags.contains_key("oracle-tracks") {
                "oracle"
            } else {
                "detector+bytetrack"
            }
        );
    }

    let results = if flags.contains_key("rules") {
        let cfg = sketchql::RuleSearchConfig {
            top_k,
            ..Default::default()
        };
        sketchql::evaluate_rule(&index, &sketchql::expert_rule(kind), &cfg)
    } else if let Some(baseline) = flags.get("baseline") {
        let kind = DistanceKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == baseline)
            .ok_or_else(|| format!("unknown baseline {baseline:?}"))?;
        let mut m = Matcher::new(ClassicalSimilarity::new(kind));
        m.config.top_k = top_k;
        m.search(&index, &query).map_err(|e| e.to_string())?
    } else {
        let model_path = req(flags, "model")?;
        let model = TrainedModel::load(Path::new(model_path)).map_err(|e| e.to_string())?;
        let mut m = Matcher::new(model.similarity());
        m.config.top_k = top_k;
        m.config.threads = 4;
        // Escape hatch for A/B timing: one encoder forward per candidate
        // instead of the memoized batched path (results are identical).
        m.config.embed_cache = !flags.contains_key("no-embed-cache");
        if let Some(dir) = flags.get("store-dir") {
            // Index-backed path: pick the attached store tier (a
            // monolithic `.skstore` or a sharded `.skset/`) whose model
            // and video fingerprints match what we just built. Attach
            // validates headers/manifests only; payloads load on probe.
            let tiers = load_store_tier_dir(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
            let mut tier = tiers
                .into_values()
                .find(|t| t.matches_model(&m.sim) && t.matches_index(&index))
                .ok_or_else(|| format!("{dir}: no store matches this video and model"))?;
            if let Some(np) = flags.get("nprobe") {
                let np: usize = np
                    .parse()
                    .map_err(|_| format!("--nprobe: cannot parse {np:?}"))?;
                tier.set_nprobe(np);
            }
            let search = m
                .search_with_tier(&index, &tier, &query, &CancelToken::none())
                .map_err(|e| e.to_string())?;
            if !quiet {
                if search.from_store {
                    println!(
                        "store: index-backed ({} of {} vectors probed, {} shard(s))",
                        search.probed,
                        tier.rows(),
                        tier.shard_count()
                    );
                } else {
                    println!("store: cannot serve this query; fell back to full scan");
                }
            }
            search.moments
        } else {
            m.search(&index, &query).map_err(|e| e.to_string())?
        }
    };
    let report = recorder.finish(format!("{}/{}", video.name, kind.name()));

    Ok((video, kind, results, report))
}

fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let (video, kind, results, report) = execute_query(flags, false)?;

    let truth = video.events_of(kind);
    println!("\n#  frames            score   ground truth?");
    for (i, m) in results.iter().enumerate() {
        let hit = truth.iter().any(|t| t.temporal_iou(m.start, m.end) >= 0.3);
        println!(
            "{:<2} {:>6}..{:<7} {:.3}   {}",
            i + 1,
            m.start,
            m.end,
            m.score,
            if hit {
                format!("YES ({})", kind.name())
            } else {
                "-".into()
            }
        );
    }
    if flags.contains_key("stats") {
        if !telemetry::is_enabled() {
            eprintln!("note: built without the `telemetry` feature; counters are all zero");
        }
        println!();
        print!("{}", report.render_table());
    }
    Ok(())
}

/// Offline ingest: embed every sliding window of a video once and
/// persist the vectors (plus the window grid and fingerprints) as a
/// `.skstore` file that `serve --store-dir` and `query --store-dir`
/// can answer from without re-embedding.
fn cmd_ingest(flags: &HashMap<String, String>) -> Result<(), String> {
    let video = load_video(req(flags, "video")?)?;
    let model = TrainedModel::load(Path::new(req(flags, "model")?)).map_err(|e| e.to_string())?;
    let dataset = flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| video.name.clone());
    let dir = Path::new(flags.get("store-dir").map_or("stores", String::as_str));
    let kinds: Vec<EventKind> = match flags.get("events") {
        // Default to the full canonical catalogue so the store serves
        // any event query at the default matcher window grid.
        None => EventKind::ALL.to_vec(),
        Some(list) => list.split(',').map(parse_event).collect::<Result<_, _>>()?,
    };
    let spans: Vec<u32> = kinds.iter().map(|&k| query_clip(k).span()).collect();

    let index = build_index(&video, flags.contains_key("oracle-tracks"));
    println!(
        "index: {} tracks over {} frames",
        index.tracks.len(),
        index.frames
    );
    let sim = model.similarity();
    let mut cfg = IngestConfig::from_matcher(&MatcherConfig::default(), &spans);
    cfg.threads = num(flags, "threads", 4)?;
    let started = std::time::Instant::now();

    if flags.contains_key("shard-frames") {
        // Sharded ingest: frame-range shards embedded in parallel across
        // the worker pool, one `.skshard` file each plus a manifest.
        let shard_frames: u32 = num(flags, "shard-frames", 0)?;
        if shard_frames == 0 {
            return Err("--shard-frames: must be at least 1".into());
        }
        let set_dir = dir.join(shard_set_dir_name(&dataset));
        let set = ingest_sharded(
            &sim,
            &index,
            &dataset,
            &cfg,
            shard_frames,
            &set_dir,
            &|e| match e {
                IngestProgress::Enumerated { windows, shards } => {
                    println!("progress: enumerated {windows} windows across {shards} shard(s)");
                }
                IngestProgress::ShardEmbedded {
                    shard_id,
                    done,
                    total,
                } => {
                    println!("progress: {done}/{total} windows embedded (shard {shard_id} done)");
                }
                IngestProgress::ShardWritten { shard_id, rows } => {
                    println!("progress: shard {shard_id} written ({rows} rows)");
                }
            },
        )
        .map_err(|e| e.to_string())?;
        println!(
            "embedded {} windows into {} shards (window lengths {:?}, {} quantizer lists, \
             {} threads) in {:.1}s",
            set.total_rows(),
            set.shard_count(),
            cfg.window_lens,
            set.nlist(),
            cfg.threads.max(1),
            started.elapsed().as_secs_f64()
        );
        if flags.contains_key("verify") {
            let reopened = ShardSet::open(&set_dir).map_err(|e| e.to_string())?;
            reopened.verify().map_err(|e| e.to_string())?;
            println!(
                "verify: manifest and {} shard checksum(s) ok",
                reopened.shard_count()
            );
        }
        println!(
            "wrote sharded store for dataset {dataset:?} into {}",
            set_dir.display()
        );
        return Ok(());
    }

    let store = ingest(&sim, &index, &dataset, &cfg);
    println!(
        "embedded {} windows (dim {}, window lengths {:?}) in {:.1}s; {} ANN lists",
        store.store.len(),
        store.store.dim(),
        cfg.window_lens,
        started.elapsed().as_secs_f64(),
        store.nlist()
    );
    let mut stores = std::collections::BTreeMap::new();
    stores.insert(dataset.clone(), store);
    save_store_dir(dir, &stores).map_err(|e| e.to_string())?;
    if flags.contains_key("verify") {
        let reopened = load_store_tier_dir(dir).map_err(|e| e.to_string())?;
        if !reopened.contains_key(&dataset) {
            return Err(format!("verify: dataset {dataset:?} missing after write"));
        }
        println!("verify: store header ok");
    }
    println!("wrote store for dataset {dataset:?} into {}", dir.display());
    Ok(())
}

/// Live ingest: commit the frames `--video` has grown by since the
/// last ingest/append of `<store-dir>/<dataset>.skset/` as one new
/// epoch. Only windows owned by the new frames are embedded; the
/// result is byte-identical to a from-scratch sharded ingest of the
/// grown video (the append-equivalence gate in `crates/core/tests`).
fn cmd_append(flags: &HashMap<String, String>) -> Result<(), String> {
    let video = load_video(req(flags, "video")?)?;
    let model = TrainedModel::load(Path::new(req(flags, "model")?)).map_err(|e| e.to_string())?;
    let dataset = flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| video.name.clone());
    let dir = Path::new(flags.get("store-dir").map_or("stores", String::as_str));
    let set_dir = dir.join(shard_set_dir_name(&dataset));
    if !set_dir.is_dir() {
        return Err(format!(
            "{}: no sharded store for dataset {dataset:?} (run ingest --shard-frames first; \
             monolithic .skstore files cannot be appended to)",
            set_dir.display()
        ));
    }
    let index = build_index(&video, flags.contains_key("oracle-tracks"));
    println!(
        "index: {} tracks over {} frames",
        index.tracks.len(),
        index.frames
    );
    let threads = num(flags, "threads", 4)?;
    let started = std::time::Instant::now();
    let out = append_frames(&model.similarity(), &index, &set_dir, threads, &|e| {
        if let IngestProgress::ShardWritten { shard_id, rows } = e {
            println!("progress: shard {shard_id} rewritten ({rows} rows)");
        }
    })
    .map_err(|e| e.to_string())?;
    if out.new_frames == out.old_frames {
        println!(
            "nothing to append: the store already covers {} frames (epoch {})",
            out.old_frames, out.epoch
        );
        return Ok(());
    }
    println!(
        "appended frames {}..{} as epoch {}: {} windows embedded, {} reused, \
         {} shard(s) rewritten in {:.1}s",
        out.old_frames,
        out.new_frames,
        out.epoch,
        out.embedded_rows,
        out.reused_rows,
        out.rewritten_shards,
        started.elapsed().as_secs_f64()
    );
    if flags.contains_key("verify") {
        let reopened = ShardSet::open(&set_dir).map_err(|e| e.to_string())?;
        reopened.verify().map_err(|e| e.to_string())?;
        println!(
            "verify: manifest and {} shard checksum(s) ok",
            reopened.shard_count()
        );
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let (_, _, _, report) = execute_query(flags, true)?;
    match flags.get("format").map_or("json", String::as_str) {
        "json" => {
            println!(
                "{{\"report\":{},\"registry\":{}}}",
                report.to_json(),
                telemetry::snapshot_json()
            );
        }
        "prometheus" => print!("{}", telemetry::snapshot_prometheus()),
        other => {
            return Err(format!(
                "--format: expected json or prometheus, got {other:?}"
            ))
        }
    }
    Ok(())
}

fn cmd_render(flags: &HashMap<String, String>) -> Result<(), String> {
    let video = load_video(req(flags, "video")?)?;
    let start: u32 = num(flags, "start", 0)?;
    let end: u32 = num(
        flags,
        "end",
        (start + 120).min(video.frames.saturating_sub(1)),
    )?;
    let clip = video.truth.window(start, end);
    // Drop empty trajectories for readability.
    let visible: Vec<_> = clip
        .objects
        .iter()
        .filter(|t| t.len() >= 2)
        .cloned()
        .collect();
    let clip = sketchql_trajectory::Clip::new(clip.frame_width, clip.frame_height, visible);
    println!("frames {start}..{end} of {}:", video.name);
    println!("{}", render_storyboard(&clip, 100, 30));
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(vp) = flags.get("video") {
        let video = load_video(vp)?;
        println!("video {}", video.name);
        println!("  family  {}", video.family.name());
        println!(
            "  frames  {} ({:.1}s @ {} fps)",
            video.frames,
            video.frames as f32 / video.fps,
            video.fps
        );
        println!("  objects {}", video.truth.num_objects());
        println!("  events:");
        for e in &video.events {
            println!(
                "    {:<24} {:>6}..{:<6} objects {:?}",
                e.kind.name(),
                e.start,
                e.end,
                e.object_ids
            );
        }
        return Ok(());
    }
    if let Some(mp) = flags.get("model") {
        let model = TrainedModel::load(Path::new(mp)).map_err(|e| e.to_string())?;
        println!("model {mp}");
        println!("  params      {}", model.store.num_scalars());
        println!("  d_model     {}", model.config.encoder.d_model);
        println!("  layers      {}", model.config.encoder.layers);
        println!("  steps       {}", model.config.steps);
        println!(
            "  final loss  {:.3}",
            model.loss_history.last().copied().unwrap_or(f32::NAN)
        );
        return Ok(());
    }
    Err("info needs --video or --model".into())
}

/// Builds the scheduler policy from `--sched`, `--aging-ms`, and
/// `--classes`. The class spec is one comma-separated flag value
/// (`name[:prio[:rate[:burst[:quota]]]],...`) because repeated flags
/// overwrite each other in this parser.
fn parse_sched_policy(flags: &HashMap<String, String>) -> Result<SchedPolicy, String> {
    let mut policy = SchedPolicy::default();
    match flags.get("sched").map(String::as_str) {
        None | Some("deadline") => policy.mode = SchedMode::Deadline,
        Some("fifo") => policy.mode = SchedMode::Fifo,
        Some(other) => return Err(format!("--sched: expected fifo or deadline, got {other:?}")),
    }
    policy.aging_ms = num(flags, "aging-ms", policy.aging_ms)?;
    if let Some(spec) = flags.get("classes") {
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let mut parts = entry.split(':');
            let name = parts.next().unwrap_or_default();
            if name.is_empty() {
                return Err(format!("--classes: empty class name in {entry:?}"));
            }
            let mut cfg = ClassConfig::default();
            for (i, value) in parts.enumerate() {
                if value.is_empty() {
                    continue;
                }
                let bad = |what: &str| format!("--classes: bad {what} {value:?} in {entry:?}");
                match i {
                    0 => cfg.priority = value.parse().map_err(|_| bad("priority"))?,
                    1 => cfg.rate_per_sec = value.parse().map_err(|_| bad("rate"))?,
                    2 => cfg.burst = value.parse().map_err(|_| bad("burst"))?,
                    3 => cfg.queue_quota = value.parse().map_err(|_| bad("quota"))?,
                    _ => {
                        return Err(format!(
                            "--classes: too many fields in {entry:?} \
                             (name:prio:rate:burst:quota)"
                        ))
                    }
                }
            }
            policy.classes.insert(name.to_string(), cfg);
        }
    }
    Ok(policy)
}

/// Starts the query service and blocks until a wire `Shutdown` request
/// arrives, then drains every admitted query before exiting.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    // The flight recorder freezes its capacity on first use, so the
    // flag must be applied before anything records a trace.
    if let Some(n) = flags.get("flight-traces") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--flight-traces: cannot parse {n:?}"))?;
        if telemetry::configure_flight_capacity(n) {
            println!("flight recorder: keeping the last {n} traces");
        } else if telemetry::is_enabled() {
            eprintln!("warning: flight recorder already in use; --flight-traces ignored");
        }
    }
    let model = TrainedModel::load(Path::new(req(flags, "model")?)).map_err(|e| e.to_string())?;
    let oracle = flags.contains_key("oracle-tracks");
    let mut datasets = std::collections::BTreeMap::new();
    let mut video_paths = std::collections::BTreeMap::new();
    for spec in req(flags, "videos")?.split(',') {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--videos: expected name=file, got {spec:?}"))?;
        let video = load_video(path)?;
        let index = build_index(&video, oracle);
        println!(
            "loaded {name}: {} tracks over {} frames",
            index.tracks.len(),
            index.frames
        );
        if datasets.insert(name.to_string(), index).is_some() {
            return Err(format!("--videos: duplicate dataset name {name:?}"));
        }
        video_paths.insert(name.to_string(), path.to_string());
    }
    if datasets.is_empty() {
        return Err("--videos: no datasets given".into());
    }

    let mut matcher = sketchql::MatcherConfig::default();
    matcher.top_k = num(flags, "top-k", matcher.top_k)?;
    let config = EngineConfig {
        workers: num(flags, "workers", 4)?,
        queue_depth: num(flags, "queue-depth", 64)?,
        default_deadline: flags
            .get("deadline-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("--deadline-ms: cannot parse {v:?}"))
            })
            .transpose()?,
        fused_batch: num(flags, "fused-batch", 0)?,
        sched: parse_sched_policy(flags)?,
        matcher,
        registry_path: flags.get("registry").map(std::path::PathBuf::from),
    };
    if let Some(path) = &config.registry_path {
        println!("standing-query registry: {}", path.display());
    }
    // Attach ingested embedding stores (monolithic `.skstore` files and
    // sharded `.skset/` directories alike). Attach validates headers and
    // manifests only — payloads, checksums, and ANN builds are deferred
    // to first probe, so startup cost does not scale with store size.
    // Engine::start_with_stores validates fingerprints and silently
    // drops mismatches, so a stale store degrades that dataset to the
    // scan path instead of failing.
    let attach_started = std::time::Instant::now();
    let nprobe: Option<usize> = flags
        .get("nprobe")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--nprobe: cannot parse {v:?}"))
        })
        .transpose()?;
    let max_resident: Option<usize> = flags
        .get("max-resident-shards")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--max-resident-shards: cannot parse {v:?}"))
        })
        .transpose()?;
    let stores = match flags.get("store-dir") {
        Some(dir) => {
            let mut stores =
                load_store_tier_dir(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
            for tier in stores.values_mut() {
                if let Some(np) = nprobe {
                    tier.set_nprobe(np);
                }
                tier.set_max_resident(max_resident);
            }
            stores
        }
        None => std::collections::BTreeMap::new(),
    };
    if let Some(cap) = max_resident {
        println!("shard residency capped at {cap} shard(s) per set (LRU eviction)");
    }
    if !stores.is_empty() {
        let shards: usize = stores.values().map(|t| t.shard_count()).sum();
        println!(
            "store: attached {} store(s) ({} shard(s)) in {:.1} ms; payloads load lazily",
            stores.len(),
            shards,
            attach_started.elapsed().as_secs_f64() * 1e3
        );
    }
    let loaded: Vec<String> = stores.keys().cloned().collect();

    // Sharded stores can grow behind the server's back (the `append`
    // command commits new epochs in place); with --live-poll-ms the
    // server watches each set's manifest and turns every new epoch
    // into a live reload + standing-query evaluation.
    let live_poll: u64 = num(flags, "live-poll-ms", 0)?;
    let live_sources: Vec<(String, String, std::path::PathBuf, u64)> = match flags.get("store-dir")
    {
        Some(dir) if live_poll > 0 => stores
            .iter()
            .filter(|(_, tier)| matches!(tier, sketchql::StoreTier::Sharded(_)))
            .filter_map(|(name, tier)| {
                video_paths.get(name).map(|vp| {
                    (
                        name.clone(),
                        vp.clone(),
                        Path::new(dir).join(shard_set_dir_name(name)),
                        tier.epoch(),
                    )
                })
            })
            .collect(),
        _ => Vec::new(),
    };

    // Observability side channels: a JSON-lines slow-query log (also
    // records shed/cancelled/timed-out queries regardless of duration)
    // and a plaintext Prometheus scrape endpoint.
    if flags.contains_key("slow-query-ms") || flags.contains_key("slow-query-log") {
        let threshold = Duration::from_millis(num(flags, "slow-query-ms", 0)?);
        let path = flags
            .get("slow-query-log")
            .map_or("sketchql-slow.jsonl", String::as_str);
        let max_bytes = flags
            .get("slow-query-log-max-bytes")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--slow-query-log-max-bytes: cannot parse {v:?}"))
            })
            .transpose()?;
        telemetry::configure_slow_query_log_path_capped(Path::new(path), threshold, max_bytes)
            .map_err(|e| format!("--slow-query-log {path}: {e}"))?;
        match max_bytes {
            Some(cap) => println!(
                "slow-query log: {} (threshold {} ms, rotating at {} bytes)",
                path,
                threshold.as_millis(),
                cap
            ),
            None => println!(
                "slow-query log: {} (threshold {} ms)",
                path,
                threshold.as_millis()
            ),
        }
    }
    // Always-on sampling profiler: cheap enough to leave running (it
    // wakes `--profile-hz` times a second and walks live span stacks),
    // and it is what `client --action profile` answers from.
    let profile_hz: u32 = num(flags, "profile-hz", 19)?;
    if profile_hz > 0 && telemetry::is_enabled() {
        telemetry::start_continuous_profiler(profile_hz);
        println!("continuous profiler sampling at {profile_hz} Hz");
    }
    let metrics = flags
        .get("metrics-addr")
        .map(|addr| MetricsListener::start(addr).map_err(|e| format!("bind metrics {addr}: {e}")))
        .transpose()?;
    if let Some(listener) = &metrics {
        println!("metrics scrape endpoint on {}", listener.local_addr());
    }

    let addr = flags.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let engine = Engine::start_with_stores(model, datasets, stores, config);
    let stored = engine.stored_datasets();
    for name in &loaded {
        if stored.contains(name) {
            println!("store: dataset {name:?} is index-backed");
        } else {
            println!("store: dataset {name:?} store mismatched or unknown; using scan path");
        }
    }
    let server = Server::start(engine, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let sched = &server.engine().config().sched;
    println!(
        "serving on {} ({} workers, queue depth {}, {} scheduling, {} classes)",
        server.local_addr(),
        server.engine().config().workers,
        server.engine().config().queue_depth,
        match sched.mode {
            SchedMode::Fifo => "fifo",
            SchedMode::Deadline => "deadline",
        },
        sched.classes.len().max(1)
    );
    for (name, cfg) in &sched.classes {
        println!(
            "class {name:?}: priority {}, rate {}/s burst {}, queue quota {}",
            cfg.priority,
            if cfg.rate_per_sec > 0.0 {
                format!("{}", cfg.rate_per_sec)
            } else {
                "unlimited".into()
            },
            cfg.burst,
            if cfg.queue_quota > 0 {
                format!("{}", cfg.queue_quota)
            } else {
                "unlimited".into()
            }
        );
    }
    let live_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = if !live_sources.is_empty() {
        println!(
            "live ingest poller: checking {} sharded store(s) every {} ms",
            live_sources.len(),
            live_poll
        );
        let engine = server.engine_handle();
        let stop = std::sync::Arc::clone(&live_stop);
        let handle = std::thread::Builder::new()
            .name("sketchql-live-poll".into())
            .spawn(move || {
                let mut sources = live_sources;
                loop {
                    // Sleep in short steps so shutdown is prompt.
                    let mut waited = 0u64;
                    while waited < live_poll {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        let step = (live_poll - waited).min(100);
                        std::thread::sleep(Duration::from_millis(step));
                        waited += step;
                    }
                    for (name, video_path, set_dir, last_epoch) in sources.iter_mut() {
                        // Manifest-only open: cheap enough to poll.
                        let Ok(set) = ShardSet::open(set_dir) else {
                            continue;
                        };
                        let epoch = set.manifest().epoch;
                        if epoch <= *last_epoch {
                            continue;
                        }
                        let Ok(video) = load_video(video_path) else {
                            eprintln!(
                                "live: {name}: store advanced but {video_path} is unreadable"
                            );
                            continue;
                        };
                        let index = build_index(&video, oracle);
                        let mut tier = sketchql::StoreTier::Sharded(set);
                        if let Some(np) = nprobe {
                            tier.set_nprobe(np);
                        }
                        tier.set_max_resident(max_resident);
                        match engine.reload_dataset(name, index, tier) {
                            Ok(r) => {
                                println!(
                                    "live: {name} advanced to epoch {} ({} frames): \
                                     {} standing quer(ies) evaluated, {} match(es) queued",
                                    r.epoch, r.frames, r.evaluated, r.delivered
                                );
                                *last_epoch = epoch;
                            }
                            Err(e) => eprintln!("live: reload {name}: {e}"),
                        }
                    }
                }
            })
            .map_err(|e| format!("spawn live poller: {e}"))?;
        Some(handle)
    } else {
        None
    };

    server.wait_for_shutdown_request();
    println!("shutdown requested; draining...");
    live_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = poller {
        let _ = handle.join();
    }
    server.shutdown();
    if let Some(listener) = metrics {
        listener.shutdown();
    }
    telemetry::disable_slow_query_log();
    println!("server stopped");
    Ok(())
}

/// One wire request against a running server.
fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = req(flags, "addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match req(flags, "action")? {
        "ping" => {
            let version = client.ping().map_err(|e| e.to_string())?;
            println!("pong (protocol v{version})");
        }
        "list" => {
            for d in client.list_datasets().map_err(|e| e.to_string())? {
                println!(
                    "{:<24} {:>7} frames {:>5} tracks  {}",
                    d.name,
                    d.frames,
                    d.tracks,
                    if d.stored { "store" } else { "scan" }
                );
            }
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!("workers            {}", s.workers);
            println!("queued             {}", s.queued);
            println!("in flight          {}", s.in_flight);
            println!("accepted           {}", s.accepted);
            println!("completed          {}", s.completed);
            println!("rejected overload  {}", s.rejected_overload);
            println!("timed out          {}", s.timed_out);
            println!("failed             {}", s.failed);
            println!("rate limited       {}", s.rate_limited);
            println!("store hits         {}", s.store_hits);
            println!("store fallbacks    {}", s.store_fallbacks);
            println!("store rows probed  {}", s.store_probed);
            if !s.classes.is_empty() {
                println!(
                    "{:<16} {:>8} {:>7} {:>12} {:>10} {:>12} {:>6}",
                    "class", "priority", "queued", "oldest_ms", "completed", "rate_limited", "shed"
                );
                for c in &s.classes {
                    println!(
                        "{:<16} {:>8} {:>7} {:>12} {:>10} {:>12} {:>6}",
                        c.name,
                        c.priority,
                        c.queued,
                        c.oldest_wait_ms,
                        c.completed,
                        c.rate_limited,
                        c.shed
                    );
                }
            }
        }
        "query" => {
            let dataset = req(flags, "dataset")?;
            let event = req(flags, "event")?;
            let top_k = flags
                .get("top-k")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("--top-k: cannot parse {v:?}"))
                })
                .transpose()?;
            let deadline = flags
                .get("deadline-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map(Duration::from_millis)
                        .map_err(|_| format!("--deadline-ms: cannot parse {v:?}"))
                })
                .transpose()?;
            let priority = flags
                .get("priority")
                .map(|v| {
                    v.parse::<i32>()
                        .map_err(|_| format!("--priority: cannot parse {v:?}"))
                })
                .transpose()?;
            let opts = QueryOptions {
                top_k,
                deadline,
                class: flags.get("class").cloned(),
                priority,
                trace_id: None,
            };
            let outcome = client
                .query_event_with(dataset, event, &opts)
                .map_err(|e| e.to_string())?;
            println!(
                "{} moments (waited {} ms, ran {} ms, batch of {}, trace {})",
                outcome.moments.len(),
                outcome.queue_wait_ms,
                outcome.execute_ms,
                outcome.batch_size,
                telemetry::format_trace_id(outcome.trace_id)
            );
            println!("#  frames            score");
            for (i, m) in outcome.moments.iter().enumerate() {
                println!("{:<2} {:>6}..{:<7} {:.3}", i + 1, m.start, m.end, m.score);
            }
        }
        "trace" => {
            let trace_id = flags
                .get("trace-id")
                .map(|v| {
                    telemetry::parse_trace_id(v)
                        .ok_or_else(|| format!("--trace-id: cannot parse {v:?} as a hex id"))
                })
                .transpose()?;
            let limit = flags
                .get("limit")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("--limit: cannot parse {v:?}"))
                })
                .transpose()?;
            let traces = client.trace(trace_id, limit).map_err(|e| e.to_string())?;
            if traces.is_empty() {
                println!("no matching traces in the flight recorder");
            }
            for trace in &traces {
                print_waterfall(trace);
            }
        }
        "metrics" => {
            print!("{}", client.metrics_text().map_err(|e| e.to_string())?);
        }
        "profile" => {
            let seconds = flags
                .get("seconds")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("--seconds: cannot parse {v:?}"))
                })
                .transpose()?;
            let hz = flags
                .get("hz")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("--hz: cannot parse {v:?}"))
                })
                .transpose()?;
            let profile = client.profile(seconds, hz).map_err(|e| e.to_string())?;
            // Summary on stderr so stdout pipes clean into
            // `flamegraph.pl` / `inferno-flamegraph`.
            eprintln!(
                "{} samples over {:.1} s",
                profile.samples,
                profile.duration_ms as f64 / 1e3
            );
            if profile.samples == 0 {
                eprintln!(
                    "hint: start the server with --profile-hz > 0, or pass \
                     --seconds <n> to sample a fresh window"
                );
            }
            print!("{}", profile.folded);
        }
        "top" => {
            let interval = Duration::from_millis(num(flags, "interval-ms", 2000)?);
            let iterations: u64 = num(flags, "iterations", 0)?;
            run_top(&mut client, interval, iterations)?;
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown");
        }
        other => {
            return Err(format!(
                "--action: expected ping|list|stats|query|trace|metrics|profile|top|shutdown, \
                 got {other:?}"
            ))
        }
    }
    Ok(())
}

/// Registers a standing query over the wire and prints the handle to
/// poll it with.
fn cmd_register(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = req(flags, "addr")?;
    let dataset = req(flags, "dataset")?;
    let event = req(flags, "event")?;
    parse_event(event)?; // fail locally with the catalogue message
    let min_score = flags
        .get("min-score")
        .map(|v| {
            v.parse::<f32>()
                .map_err(|_| format!("--min-score: cannot parse {v:?}"))
        })
        .transpose()?;
    let top_k = flags
        .get("top-k")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--top-k: cannot parse {v:?}"))
        })
        .transpose()?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reg = client
        .register_event(dataset, event, min_score, top_k)
        .map_err(|e| e.to_string())?;
    println!(
        "registered standing query {} on {dataset:?} ({event}); \
         watching appends past frame {}",
        reg.registration_id, reg.watermark
    );
    println!(
        "poll it with: sketchql-cli watch --addr {addr} --registration-id {}",
        reg.registration_id
    );
    Ok(())
}

/// Polls a standing query's notification queue, printing matches as
/// ingest epochs land.
fn cmd_watch(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = req(flags, "addr")?;
    let id: u64 = req(flags, "registration-id")?
        .parse()
        .map_err(|_| "--registration-id: cannot parse".to_string())?;
    let interval = Duration::from_millis(num(flags, "interval-ms", 1000)?);
    let iterations: u64 = num(flags, "iterations", 0)?;
    let max = flags
        .get("max")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--max: cannot parse {v:?}"))
        })
        .transpose()?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut round = 0u64;
    let mut last_watermark: Option<u32> = None;
    let mut dropped = 0u64;
    loop {
        let feed = client.notifications(id, max).map_err(|e| e.to_string())?;
        if feed.matches.is_empty() {
            // Heartbeat only when the evaluated range moved.
            if last_watermark.is_some_and(|w| w != feed.watermark) {
                println!(
                    "epoch {:>4}  evaluated through frame {} (no new matches)",
                    feed.epoch, feed.watermark
                );
            }
        }
        for m in &feed.matches {
            println!(
                "epoch {:>4}  frames {:>6}..{:<7} score {:.3}  tracks {:?}",
                m.epoch, m.start, m.end, m.score, m.track_ids
            );
        }
        if feed.dropped > dropped {
            eprintln!(
                "warning: {} match(es) shed to queue overflow since registration",
                feed.dropped
            );
            dropped = feed.dropped;
        }
        last_watermark = Some(feed.watermark);
        round += 1;
        if iterations > 0 && round >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Renders one flight-recorder trace as an indented stage waterfall:
/// spans in start order, indented by nesting depth, with each span's
/// offset into the query and its duration. A resource line (attributed
/// CPU and heap traffic) follows the header when the server recorded
/// any.
fn print_waterfall(trace: &sketchql_server::WireTrace) {
    println!(
        "trace {}  [{}]  outcome {}  batch {}  total {:.3} ms",
        telemetry::format_trace_id(trace.trace_id),
        trace.label,
        trace.outcome,
        trace.batch_size,
        trace.total_nanos as f64 / 1e6
    );
    if trace.cpu_nanos > 0 || trace.alloc_count > 0 {
        println!(
            "  cpu {:.3} ms  allocated {} in {} allocations",
            trace.cpu_nanos as f64 / 1e6,
            fmt_bytes(trace.alloc_bytes),
            trace.alloc_count
        );
    }
    for span in &trace.spans {
        println!(
            "  {:>10.3} ms  +{:>10.3} ms  {}{}",
            span.start_nanos as f64 / 1e6,
            span.nanos as f64 / 1e6,
            "  ".repeat(span.depth),
            span.name
        );
    }
}

/// Human-readable byte count (KiB/MiB/GiB with one decimal).
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [(&str, f64); 3] = [
        ("GiB", (1u64 << 30) as f64),
        ("MiB", (1u64 << 20) as f64),
        ("KiB", (1u64 << 10) as f64),
    ];
    for (unit, div) in UNITS {
        if bytes as f64 >= div {
            return format!("{:.1} {unit}", bytes as f64 / div);
        }
    }
    format!("{bytes} B")
}

/// One snapshot the `top` loop diffs against: monotone totals from
/// `Stats` plus the cumulative execute-latency buckets from `Metrics`.
struct TopSample {
    stats: sketchql_server::EngineStats,
    execute_buckets: Vec<(f64, u64)>,
    at: std::time::Instant,
}

fn top_sample(client: &mut Client) -> Result<TopSample, String> {
    let stats = client.stats().map_err(|e| e.to_string())?;
    let prometheus = client.metrics_text().map_err(|e| e.to_string())?;
    Ok(TopSample {
        stats,
        execute_buckets: parse_execute_buckets(&prometheus),
        at: std::time::Instant::now(),
    })
}

/// Pulls the cumulative `le` buckets of the execute-latency histogram
/// out of a Prometheus text exposition.
fn parse_execute_buckets(prometheus: &str) -> Vec<(f64, u64)> {
    let mut out = Vec::new();
    for line in prometheus.lines() {
        let Some(rest) = line.strip_prefix("sketchql_server_execute_ms_bucket{le=\"") else {
            continue;
        };
        let Some((le, count)) = rest.split_once("\"} ") else {
            continue;
        };
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            match le.parse() {
                Ok(b) => b,
                Err(_) => continue,
            }
        };
        if let Ok(count) = count.trim().parse::<u64>() {
            out.push((bound, count));
        }
    }
    out
}

/// Diffs two cumulative histogram scrapes into the window's own
/// cumulative buckets (a diff of cumulative counts is itself
/// cumulative). `None` when the window saw zero traffic — including a
/// counter reset after a server restart — so callers never feed an
/// all-zero histogram into percentile interpolation.
fn bucket_window_delta(prev: &[(f64, u64)], cur: &[(f64, u64)]) -> Option<Vec<(f64, u64)>> {
    let window: Vec<(f64, u64)> = cur
        .iter()
        .map(|&(bound, count)| {
            let before = prev
                .iter()
                .find(|(b, _)| *b == bound)
                .map_or(0, |(_, c)| *c);
            (bound, count.saturating_sub(before))
        })
        .collect();
    match window.last() {
        Some(&(_, total)) if total > 0 => Some(window),
        _ => None,
    }
}

/// Estimates the `q`-quantile (0..1) from cumulative histogram buckets
/// by linear interpolation inside the bucket the target rank lands in.
/// `None` when the buckets are empty. The open `+Inf` bucket reports
/// its lower bound (the true value is unbounded).
fn percentile_from_buckets(buckets: &[(f64, u64)], q: f64) -> Option<f64> {
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let target = (total as f64 * q).max(1.0);
    let mut prev_bound = 0.0;
    let mut prev_count = 0u64;
    for &(bound, count) in buckets {
        if count as f64 >= target {
            if bound.is_infinite() {
                return Some(prev_bound);
            }
            let in_bucket = (count - prev_count) as f64;
            let frac = if in_bucket > 0.0 {
                (target - prev_count as f64) / in_bucket
            } else {
                1.0
            };
            return Some(prev_bound + frac * (bound - prev_bound));
        }
        prev_bound = bound;
        prev_count = count;
    }
    None
}

/// The live top view: polls `Stats`, `Metrics`, and recent traces every
/// `interval`, rendering throughput (from counter deltas), queue state,
/// execute-latency percentiles (from histogram bucket deltas), the
/// per-dataset traffic breakdown, and the most CPU-hungry recent
/// traces. Refreshes in place on a terminal; appends blocks when piped.
/// `iterations == 0` runs until interrupted.
fn run_top(client: &mut Client, interval: Duration, iterations: u64) -> Result<(), String> {
    use std::io::IsTerminal;
    let live_terminal = std::io::stdout().is_terminal();
    let mut prev = top_sample(client)?;
    let mut round = 0u64;
    loop {
        std::thread::sleep(interval);
        let cur = top_sample(client)?;
        let traces = client.trace(None, Some(16)).map_err(|e| e.to_string())?;
        if live_terminal {
            // Clear and home so the view refreshes in place.
            print!("\x1b[2J\x1b[H");
        }
        render_top(&prev, &cur, &traces);
        prev = cur;
        round += 1;
        if iterations > 0 && round >= iterations {
            return Ok(());
        }
    }
}

fn render_top(prev: &TopSample, cur: &TopSample, traces: &[sketchql_server::WireTrace]) {
    let secs = cur.at.duration_since(prev.at).as_secs_f64().max(1e-9);
    let rate = |now: u64, before: u64| now.saturating_sub(before) as f64 / secs;
    let s = &cur.stats;
    let p = &prev.stats;
    let shed = s.rejected_overload + s.timed_out + s.failed;
    let shed_prev = p.rejected_overload + p.timed_out + p.failed;
    println!("sketchql top — {:.1}s window, {} workers", secs, s.workers);
    println!(
        "queries   {:>7.1}/s completed   {:>6.1}/s shed+failed   totals: {} ok / {} rejected / {} timed out / {} failed",
        rate(s.completed, p.completed),
        rate(shed, shed_prev),
        s.completed,
        s.rejected_overload,
        s.timed_out,
        s.failed
    );
    println!(
        "queue     {} waiting, {} in flight, {} rate limited   store: {} hits / {} fallbacks / {} rows probed",
        s.queued, s.in_flight, s.rate_limited, s.store_hits, s.store_fallbacks, s.store_probed
    );

    // Latency percentiles over just this window. An idle scrape
    // interval produces no window at all rather than NaN percentiles.
    let percentiles =
        bucket_window_delta(&prev.execute_buckets, &cur.execute_buckets).and_then(|window| {
            Some((
                percentile_from_buckets(&window, 0.50)?,
                percentile_from_buckets(&window, 0.99)?,
            ))
        });
    match percentiles {
        Some((p50, p99)) => {
            println!("execute   p50 {p50:.1} ms   p99 {p99:.1} ms (this window)")
        }
        None => println!("execute   no queries finished in this window"),
    }

    if !s.datasets.is_empty() {
        println!();
        println!(
            "{:<20} {:>9} {:>10} {:>8} {:>10} {:>6}",
            "dataset", "qps", "completed", "failed", "timed_out", "shed"
        );
        for d in &s.datasets {
            let before = p.datasets.iter().find(|b| b.name == d.name);
            let qps = rate(d.completed, before.map_or(0, |b| b.completed));
            println!(
                "{:<20} {:>8.1}/s {:>10} {:>8} {:>10} {:>6}",
                d.name, qps, d.completed, d.failed, d.timed_out, d.shed
            );
        }
    }

    // Per-class queue position: who is waiting, how long the oldest has
    // waited, and each class's completion rate over this window.
    if !s.classes.is_empty() {
        println!();
        println!(
            "{:<16} {:>8} {:>7} {:>10} {:>9} {:>12} {:>6}",
            "class", "priority", "queued", "oldest_ms", "qps", "rate_limited", "shed"
        );
        for c in &s.classes {
            let before = p.classes.iter().find(|b| b.name == c.name);
            let qps = rate(c.completed, before.map_or(0, |b| b.completed));
            println!(
                "{:<16} {:>8} {:>7} {:>10} {:>8.1}/s {:>12} {:>6}",
                c.name, c.priority, c.queued, c.oldest_wait_ms, qps, c.rate_limited, c.shed
            );
        }
    }

    let mut by_cpu: Vec<&sketchql_server::WireTrace> = traces.iter().collect();
    by_cpu.sort_by_key(|t| std::cmp::Reverse(t.cpu_nanos));
    let heavy: Vec<_> = by_cpu
        .into_iter()
        .filter(|t| t.cpu_nanos > 0)
        .take(5)
        .collect();
    if !heavy.is_empty() {
        println!();
        println!("recent traces by attributed cpu:");
        for t in heavy {
            println!(
                "  {}  {:<20} {:<18} cpu {:>9.3} ms  alloc {:>10}  wall {:>9.3} ms",
                telemetry::format_trace_id(t.trace_id),
                t.label,
                t.outcome,
                t.cpu_nanos as f64 / 1e6,
                fmt_bytes(t.alloc_bytes),
                t.total_nanos as f64 / 1e6
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{bucket_window_delta, parse_execute_buckets, percentile_from_buckets};

    #[test]
    fn zero_traffic_window_yields_no_percentiles() {
        let prev = vec![(1.0, 40), (10.0, 90), (f64::INFINITY, 100)];
        let cur = prev.clone(); // nothing finished between scrapes
        assert!(bucket_window_delta(&prev, &cur).is_none());
        assert_eq!(percentile_from_buckets(&[], 0.5), None);
        assert_eq!(
            percentile_from_buckets(&[(1.0, 0), (f64::INFINITY, 0)], 0.5),
            None
        );
    }

    #[test]
    fn counter_reset_between_scrapes_reads_as_idle_not_underflow() {
        // The server restarted mid-watch: cumulative counts went down.
        let prev = vec![(1.0, 50), (f64::INFINITY, 80)];
        let cur = vec![(1.0, 3), (f64::INFINITY, 4)];
        assert!(bucket_window_delta(&prev, &cur).is_none());
    }

    #[test]
    fn window_percentiles_interpolate_and_stay_finite() {
        let prev = vec![(1.0, 5), (10.0, 5), (f64::INFINITY, 5)];
        let cur = vec![(1.0, 15), (10.0, 105), (f64::INFINITY, 105)];
        let window = bucket_window_delta(&prev, &cur).expect("traffic in window");
        assert_eq!(window, vec![(1.0, 10), (10.0, 100), (f64::INFINITY, 100)]);

        // Rank 50 of 100 lands in the 1..10 bucket holding 90 samples:
        // 1 + (50 - 10) / 90 * 9.
        let p50 = percentile_from_buckets(&window, 0.50).expect("p50");
        assert!(p50.is_finite(), "p50 = {p50}");
        assert!(
            (p50 - (1.0 + 40.0 / 90.0 * 9.0)).abs() < 1e-9,
            "p50 = {p50}"
        );

        // The open +Inf bucket never reports an unbounded value.
        let p99 = percentile_from_buckets(&window, 0.99).expect("p99");
        assert!(p99.is_finite() && p99 <= 10.0, "p99 = {p99}");
    }

    #[test]
    fn prometheus_buckets_parse_in_order() {
        let text = "\
# HELP sketchql_server_execute_ms execute latency
# TYPE sketchql_server_execute_ms histogram
sketchql_server_execute_ms_bucket{le=\"1\"} 2
sketchql_server_execute_ms_bucket{le=\"10\"} 7
sketchql_server_execute_ms_bucket{le=\"+Inf\"} 9
sketchql_server_execute_ms_sum 44.5
sketchql_server_execute_ms_count 9
";
        assert_eq!(
            parse_execute_buckets(text),
            vec![(1.0, 2), (10.0, 7), (f64::INFINITY, 9)]
        );
    }
}
