//! The SketchQL façade: the six demo steps as a typed API.
//!
//! Mirrors §3 of the demo paper end-to-end:
//!
//! 1. **Upload dataset & initialization** — [`SketchQL::upload_dataset`]
//!    runs detector + tracker preprocessing and indexes the trajectories.
//!    2-4. **Object creation, trajectory creation, trajectory editing** —
//!    via a [`Sketcher`] from [`SketchQL::new_sketch`].
//! 5. **Query execution** — [`SketchQL::run_sketch`] /
//!    [`SketchQL::run_query`] invoke the Matcher.
//! 6. **Display results** — [`SketchQL::display`] lists the found clips
//!    sorted by similarity, and [`SketchQL::moment_clip`] reconstructs a
//!    retrieved clip (for playback or Tuner feedback).

use serde::{Deserialize, Serialize};
use sketchql_datasets::SyntheticVideo;
use sketchql_telemetry::{self as telemetry, names, QueryReport, Recorder};
use sketchql_tracker::{DetectorConfig, TrackerConfig};
use sketchql_trajectory::{Clip, ObjectClass, TrajPoint, Trajectory};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::cancel::{CancelReason, CancelToken};
use crate::index::VideoIndex;
use crate::matcher::{MatchError, Matcher, MatcherConfig, RetrievedMoment};
use crate::similarity::{LearnedSimilarity, Similarity, SimilarityError};
use crate::sketcher::{SketchError, Sketcher};
use crate::training::TrainedModel;
use crate::tuner::{fine_tune, Feedback, Reranker, TunerConfig};
use crate::vstore::{self, DatasetStore, IngestConfig};
use sketchql_store::StoreError;

/// Preprocessing settings applied at upload time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Detector noise model.
    pub detector: DetectorConfig,
    /// Tracker thresholds.
    pub tracker: TrackerConfig,
    /// Seed for the detector simulation.
    pub seed: u64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            detector: DetectorConfig::default(),
            tracker: TrackerConfig::default(),
            seed: 1234,
        }
    }
}

/// Errors from session-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No dataset with that name was uploaded.
    UnknownDataset(String),
    /// The sketch could not be compiled into a query.
    Sketch(SketchError),
    /// The similarity function cannot score this query (e.g. the learned
    /// encoder rejects it). Previously this failed silently: the search
    /// ran to completion with every candidate scored 0.0.
    Similarity(SimilarityError),
    /// The query was cancelled or its deadline passed mid-search.
    Cancelled(CancelReason),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            SessionError::Sketch(e) => write!(f, "sketch error: {e}"),
            SessionError::Similarity(e) => write!(f, "similarity error: {e}"),
            SessionError::Cancelled(r) => write!(f, "query {r}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Errors restoring a saved session. Every variant names the file that
/// failed, so a corrupt member of a many-file session directory is
/// identifiable from the error alone.
#[derive(Debug)]
pub enum LoadError {
    /// A filesystem read failed.
    Io {
        /// The file (or directory) being read.
        path: std::path::PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// A file existed but did not parse — truncated, half-written, or
    /// hand-edited JSON.
    Corrupt {
        /// The unparseable file.
        path: std::path::PathBuf,
        /// What the parser reported.
        detail: String,
    },
    /// An embedding store under `stores/` failed to load (its own error
    /// names the file and the corruption kind).
    Store(StoreError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, source } => {
                write!(f, "session file {}: {source}", path.display())
            }
            LoadError::Corrupt { path, detail } => {
                write!(f, "session file {} is corrupt: {detail}", path.display())
            }
            LoadError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io { source, .. } => Some(source),
            LoadError::Store(e) => Some(e),
            LoadError::Corrupt { .. } => None,
        }
    }
}

impl From<StoreError> for LoadError {
    fn from(e: StoreError) -> Self {
        LoadError::Store(e)
    }
}

impl From<SketchError> for SessionError {
    fn from(e: SketchError) -> Self {
        SessionError::Sketch(e)
    }
}

impl From<SimilarityError> for SessionError {
    fn from(e: SimilarityError) -> Self {
        SessionError::Similarity(e)
    }
}

impl From<MatchError> for SessionError {
    fn from(e: MatchError) -> Self {
        match e {
            MatchError::Similarity(e) => SessionError::Similarity(e),
            MatchError::Cancelled(r) => SessionError::Cancelled(r),
        }
    }
}

/// A display row for a retrieved moment ("Display Videos" window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MomentView {
    /// 1-based rank.
    pub rank: usize,
    /// First frame.
    pub start: u32,
    /// Last frame (inclusive).
    pub end: u32,
    /// Start time in seconds.
    pub start_seconds: f32,
    /// End time in seconds.
    pub end_seconds: f32,
    /// Similarity score.
    pub score: f32,
    /// Classes of the matched objects.
    pub classes: Vec<ObjectClass>,
}

/// Summary returned after uploading a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Frames indexed.
    pub frames: u32,
    /// Number of object trajectories extracted.
    pub num_tracks: usize,
}

/// A SketchQL session: a trained model plus uploaded datasets.
pub struct SketchQL {
    /// The similarity model executing queries.
    pub model: TrainedModel,
    /// Matcher search parameters.
    pub matcher_config: MatcherConfig,
    /// Preprocessing settings for future uploads.
    pub preprocess: PreprocessConfig,
    datasets: BTreeMap<String, VideoIndex>,
    stores: BTreeMap<String, DatasetStore>,
    last_report: Mutex<Option<QueryReport>>,
}

impl SketchQL {
    /// Starts a session with a trained similarity model.
    pub fn new(model: TrainedModel) -> Self {
        SketchQL {
            model,
            matcher_config: MatcherConfig::default(),
            preprocess: PreprocessConfig::default(),
            datasets: BTreeMap::new(),
            stores: BTreeMap::new(),
            last_report: Mutex::new(None),
        }
    }

    /// Step 1: uploads a video and initializes it (detector + tracker
    /// preprocessing, trajectory indexing).
    pub fn upload_dataset(&mut self, name: &str, video: &SyntheticVideo) -> DatasetSummary {
        let idx = VideoIndex::build(
            video,
            self.preprocess.detector,
            self.preprocess.tracker,
            self.preprocess.seed,
        );
        let summary = DatasetSummary {
            name: name.to_string(),
            frames: idx.frames,
            num_tracks: idx.tracks.len(),
        };
        self.datasets.insert(name.to_string(), idx);
        // Any previously attached store was built from the old contents;
        // its fingerprint would force fallbacks anyway, so drop it.
        self.stores.remove(name);
        summary
    }

    /// Uploads an already-preprocessed index (e.g. ground-truth tracks for
    /// oracle experiments).
    pub fn upload_index(&mut self, name: &str, index: VideoIndex) -> DatasetSummary {
        let summary = DatasetSummary {
            name: name.to_string(),
            frames: index.frames,
            num_tracks: index.tracks.len(),
        };
        self.datasets.insert(name.to_string(), index);
        self.stores.remove(name);
        summary
    }

    /// Names of uploaded datasets.
    pub fn datasets(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Looks up an uploaded dataset's index.
    pub fn dataset(&self, name: &str) -> Result<&VideoIndex, SessionError> {
        self.datasets
            .get(name)
            .ok_or_else(|| SessionError::UnknownDataset(name.to_string()))
    }

    /// Builds a persistent embedding store for an uploaded dataset: every
    /// sliding window the matcher would enumerate is embedded once and
    /// kept, so subsequent queries on this dataset take the index-backed
    /// path instead of re-embedding the whole video. Returns the number
    /// of vectors ingested.
    pub fn ingest_dataset(
        &mut self,
        name: &str,
        config: &IngestConfig,
    ) -> Result<usize, SessionError> {
        let store = {
            let index = self.dataset(name)?;
            let sim = LearnedSimilarity::new(self.model.encoder.clone(), self.model.store.clone());
            vstore::ingest(&sim, index, name, config)
        };
        let n = store.store.len();
        self.stores.insert(name.to_string(), store);
        Ok(n)
    }

    /// Attaches an already-built store (e.g. loaded from a store
    /// directory) to a dataset. Queries verify the store's model and
    /// index fingerprints at search time and fall back to the full scan
    /// on any mismatch, so attaching a stale store is safe, just useless.
    pub fn attach_store(&mut self, name: &str, store: DatasetStore) {
        self.stores.insert(name.to_string(), store);
    }

    /// The store attached to a dataset, if any.
    pub fn store(&self, name: &str) -> Option<&DatasetStore> {
        self.stores.get(name)
    }

    /// Names of datasets with an attached store.
    pub fn stored_datasets(&self) -> Vec<&str> {
        self.stores.keys().map(String::as_str).collect()
    }

    /// Steps 2-4: a fresh sketcher canvas to compose a query on.
    pub fn new_sketch(&self) -> Sketcher {
        Sketcher::demo()
    }

    /// Step 5 ("Run"): compiles the sketch and executes it.
    pub fn run_sketch(
        &self,
        dataset: &str,
        sketch: &Sketcher,
    ) -> Result<Vec<RetrievedMoment>, SessionError> {
        let query = sketch.compile()?;
        self.run_query(dataset, &query)
    }

    /// Step 5 with an already-compiled query clip.
    pub fn run_query(
        &self,
        dataset: &str,
        query: &Clip,
    ) -> Result<Vec<RetrievedMoment>, SessionError> {
        self.run_query_cancellable(dataset, query, &CancelToken::none())
    }

    /// [`run_query`](Self::run_query) under a [`CancelToken`]: the search
    /// polls the token and returns [`SessionError::Cancelled`] promptly
    /// once it trips (explicit cancel or deadline). This is the entry
    /// point query services use to enforce per-query deadlines.
    pub fn run_query_cancellable(
        &self,
        dataset: &str,
        query: &Clip,
        cancel: &CancelToken,
    ) -> Result<Vec<RetrievedMoment>, SessionError> {
        let sim = LearnedSimilarity::new(self.model.encoder.clone(), self.model.store.clone());
        if let Some(store) = self.stores.get(dataset) {
            let index = self.dataset(dataset)?;
            let matcher = Matcher::with_config(sim, self.matcher_config.clone());
            let recorder = Recorder::begin();
            let results = matcher.search_with_store(index, store, query, cancel);
            telemetry::counter(names::SESSION_QUERY).inc();
            *self.last_report.lock().unwrap() = Some(recorder.finish(dataset));
            return results.map(|s| s.moments).map_err(SessionError::from);
        }
        self.run_query_with_cancel(dataset, query, sim, cancel)
    }

    /// Step 5 with an arbitrary similarity function (baseline experiments).
    pub fn run_query_with<S: Similarity>(
        &self,
        dataset: &str,
        query: &Clip,
        sim: S,
    ) -> Result<Vec<RetrievedMoment>, SessionError> {
        self.run_query_with_cancel(dataset, query, sim, &CancelToken::none())
    }

    /// [`run_query_with`](Self::run_query_with) under a [`CancelToken`].
    pub fn run_query_with_cancel<S: Similarity>(
        &self,
        dataset: &str,
        query: &Clip,
        sim: S,
        cancel: &CancelToken,
    ) -> Result<Vec<RetrievedMoment>, SessionError> {
        let index = self.dataset(dataset)?;
        let matcher = Matcher::with_config(sim, self.matcher_config.clone());
        let recorder = Recorder::begin();
        let results = matcher.search_with_cancel(index, query, cancel);
        telemetry::counter(names::SESSION_QUERY).inc();
        *self.last_report.lock().unwrap() = Some(recorder.finish(dataset));
        results.map_err(SessionError::from)
    }

    /// The [`QueryReport`] of the most recent `run_query` /
    /// `run_query_with` / `run_sketch` call on this session, or `None`
    /// before the first query. When the `telemetry` feature is disabled
    /// the report carries only the label, with all counters zero.
    ///
    /// ```
    /// use sketchql::prelude::*;
    /// use sketchql::VideoIndex;
    ///
    /// let mut cfg = TrainingConfig::tiny();
    /// cfg.steps = 2;
    /// let mut sq = SketchQL::new(sketchql::training::train(cfg));
    /// assert!(sq.last_query_stats().is_none(), "no query has run yet");
    ///
    /// let cfg = sketchql_datasets::VideoConfig {
    ///     family: sketchql_datasets::SceneFamily::UrbanIntersection,
    ///     events_per_kind: 1,
    ///     distractors: 0,
    ///     fps: 30.0,
    /// };
    /// let video = sketchql_datasets::generate_video(
    ///     cfg,
    ///     7,
    ///     &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
    /// );
    /// sq.upload_index("v", VideoIndex::from_truth(&video));
    /// let query = sketchql_datasets::query_clip(sketchql_datasets::EventKind::LeftTurn);
    /// sq.run_query("v", &query).unwrap();
    ///
    /// let stats = sq.last_query_stats().unwrap();
    /// assert_eq!(stats.label, "v");
    /// if sketchql::telemetry::is_enabled() {
    ///     assert!(stats.windows_enumerated > 0);
    ///     assert!(stats.similarity_evals > 0);
    /// }
    /// ```
    pub fn last_query_stats(&self) -> Option<QueryReport> {
        self.last_report.lock().unwrap().clone()
    }

    /// A point-in-time copy of every telemetry metric in the process
    /// (counters, gauges, histograms) — cumulative across all queries, not
    /// just this session's. Render it with
    /// [`telemetry::snapshot_json`](sketchql_telemetry::snapshot_json) or
    /// [`telemetry::snapshot_prometheus`](sketchql_telemetry::snapshot_prometheus).
    pub fn telemetry_snapshot(&self) -> telemetry::MetricsSnapshot {
        telemetry::MetricsSnapshot::capture()
    }

    /// Step 6 ("Display Videos"): formats moments for display, sorted by
    /// score.
    pub fn display(
        &self,
        dataset: &str,
        moments: &[RetrievedMoment],
    ) -> Result<Vec<MomentView>, SessionError> {
        let index = self.dataset(dataset)?;
        let fps = index.fps.max(1e-6);
        Ok(moments
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let classes = m
                    .track_ids
                    .iter()
                    .filter_map(|id| index.tracks.iter().find(|t| t.id == *id))
                    .map(|t| t.class)
                    .collect();
                MomentView {
                    rank: i + 1,
                    start: m.start,
                    end: m.end,
                    start_seconds: m.start as f32 / fps,
                    end_seconds: m.end as f32 / fps,
                    score: m.score,
                    classes,
                }
            })
            .collect())
    }

    /// Reconstructs the clip of a retrieved moment (what the result window
    /// plays back, and what Tuner feedback is given on).
    pub fn moment_clip(
        &self,
        dataset: &str,
        moment: &RetrievedMoment,
    ) -> Result<Clip, SessionError> {
        let index = self.dataset(dataset)?;
        let objects = moment
            .track_ids
            .iter()
            .filter_map(|id| index.tracks.iter().find(|t| t.id == *id))
            .map(|t| {
                let pts = t
                    .points()
                    .iter()
                    .filter(|p| p.frame >= moment.start && p.frame <= moment.end)
                    .map(|p| TrajPoint::new(p.frame - moment.start, p.bbox))
                    .collect();
                Trajectory::from_points(t.id, t.class, pts)
            })
            .collect();
        Ok(Clip::new(index.frame_width, index.frame_height, objects))
    }

    /// Applies Tuner feedback by fine-tuning the session's model in place.
    /// Returns the number of usable feedback items.
    pub fn apply_feedback(
        &mut self,
        query: &Clip,
        feedback: &[Feedback],
        config: &TunerConfig,
    ) -> usize {
        let usable = feedback.len();
        self.model = fine_tune(&self.model, query, feedback, config);
        usable
    }

    /// Builds a training-free re-ranker from feedback (the lighter Tuner
    /// path).
    pub fn feedback_reranker(&self, feedback: &[Feedback], config: &TunerConfig) -> Reranker {
        Reranker::new(&self.model, feedback, config)
    }

    /// Persists the whole session (model + every preprocessed dataset
    /// index + every embedding store) under `dir`, so preprocessing and
    /// ingest are paid once across process restarts — a video database,
    /// not a per-run cache.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        let idx_dir = dir.join("indexes");
        std::fs::create_dir_all(&idx_dir)?;
        self.model.save(&dir.join("model.json"))?;
        let mut names = Vec::new();
        // Distinct dataset names can sanitize to the same file name
        // ("a/b" and "a_b" both become "a_b"); suffix on collision so no
        // index silently overwrites another. The manifest records the
        // actual file each dataset landed in.
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (name, index) in &self.datasets {
            let base = sanitize(name);
            let mut file = format!("{base}.json");
            let mut k = 2;
            while !used.insert(file.clone()) {
                file = format!("{base}_{k}.json");
                k += 1;
            }
            let json = serde_json::to_string(index).map_err(std::io::Error::other)?;
            std::fs::write(idx_dir.join(&file), json)?;
            names.push((name.clone(), file));
        }
        let manifest = serde_json::to_string(&names).map_err(std::io::Error::other)?;
        std::fs::write(dir.join("manifest.json"), manifest)?;
        if !self.stores.is_empty() {
            vstore::save_store_dir(&dir.join("stores"), &self.stores)
                .map_err(std::io::Error::other)?;
        }
        Ok(())
    }

    /// Restores a session saved with [`SketchQL::save`]. Truncated or
    /// corrupt members fail with a [`LoadError`] naming the offending
    /// file rather than an opaque parse error.
    pub fn load(dir: &std::path::Path) -> Result<Self, LoadError> {
        let read = |path: std::path::PathBuf| -> Result<(String, std::path::PathBuf), LoadError> {
            match std::fs::read_to_string(&path) {
                Ok(s) => Ok((s, path)),
                Err(source) => Err(LoadError::Io { path, source }),
            }
        };
        let (model_json, model_path) = read(dir.join("model.json"))?;
        let model: TrainedModel =
            serde_json::from_str(&model_json).map_err(|e| LoadError::Corrupt {
                path: model_path,
                detail: e.to_string(),
            })?;
        let (manifest_json, manifest_path) = read(dir.join("manifest.json"))?;
        let manifest: Vec<(String, String)> =
            serde_json::from_str(&manifest_json).map_err(|e| LoadError::Corrupt {
                path: manifest_path,
                detail: e.to_string(),
            })?;
        let mut session = SketchQL::new(model);
        for (name, file) in manifest {
            let (json, path) = read(dir.join("indexes").join(&file))?;
            let index: VideoIndex =
                serde_json::from_str(&json).map_err(|e| LoadError::Corrupt {
                    path,
                    detail: e.to_string(),
                })?;
            session.datasets.insert(name, index);
        }
        let stores_dir = dir.join("stores");
        if stores_dir.is_dir() {
            session.stores = vstore::load_store_dir(&stores_dir)?;
        }
        Ok(session)
    }
}

/// Filesystem-safe dataset file name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train, TrainingConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_datasets::{generate_video, EventKind, SceneFamily, VideoConfig};
    use sketchql_trajectory::Point2;

    fn tiny_session() -> SketchQL {
        let mut cfg = TrainingConfig::tiny();
        cfg.steps = 10;
        SketchQL::new(train(cfg))
    }

    fn small_video(seed: u64) -> SyntheticVideo {
        let cfg = VideoConfig {
            family: SceneFamily::UrbanIntersection,
            events_per_kind: 1,
            distractors: 2,
            fps: 30.0,
        };
        generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn upload_then_query_round_trip() {
        let mut sq = tiny_session();
        let video = small_video(1);
        let summary = sq.upload_dataset("traffic", &video);
        assert_eq!(summary.frames, video.frames);
        assert!(summary.num_tracks > 0);
        assert_eq!(sq.datasets(), vec!["traffic"]);

        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let results = sq.run_query("traffic", &query).unwrap();
        assert!(!results.is_empty());
        let views = sq.display("traffic", &results).unwrap();
        assert_eq!(views.len(), results.len());
        assert_eq!(views[0].rank, 1);
        assert!(views[0].start_seconds <= views[0].end_seconds);
    }

    #[test]
    fn unknown_dataset_is_error() {
        let sq = tiny_session();
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let err = sq.run_query("nope", &query).unwrap_err();
        assert_eq!(err, SessionError::UnknownDataset("nope".into()));
    }

    #[test]
    fn unembeddable_query_is_an_error_not_empty_results() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(7)));
        // Five objects exceed the encoder's slot budget. Previously this
        // silently fell back to scoring every candidate 0.0.
        let base = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let objects = (0..5)
            .map(|i| {
                let t = &base.objects[0];
                Trajectory::from_points(i, t.class, t.points().to_vec())
            })
            .collect();
        let crowd = Clip::new(1000.0, 600.0, objects);
        let err = sq.run_query("v", &crowd).unwrap_err();
        assert!(
            matches!(err, SessionError::Similarity(_)),
            "expected a similarity error, got {err:?}"
        );
    }

    #[test]
    fn sketch_to_results_pipeline() {
        let mut sq = tiny_session();
        let video = small_video(2);
        sq.upload_index("v", VideoIndex::from_truth(&video));

        // Steps 2-3: place a car, drag a left turn.
        let mut sketch = sq.new_sketch();
        let car = sketch
            .create_object(ObjectClass::Car, Point2::new(150.0, 450.0))
            .unwrap();
        sketch.set_mode(crate::sketcher::MouseMode::Drag);
        sketch
            .drag_object_along(
                car,
                &[
                    Point2::new(300.0, 450.0),
                    Point2::new(450.0, 450.0),
                    Point2::new(600.0, 430.0),
                    Point2::new(650.0, 300.0),
                    Point2::new(660.0, 150.0),
                ],
            )
            .unwrap();
        let seg = sketch.panel().lane(car)[0];
        sketch.stretch_segment(seg, 80).unwrap();
        let results = sq.run_sketch("v", &sketch).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn empty_sketch_fails_cleanly() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(3)));
        let sketch = sq.new_sketch();
        let err = sq.run_sketch("v", &sketch).unwrap_err();
        assert!(matches!(err, SessionError::Sketch(SketchError::EmptyQuery)));
    }

    #[test]
    fn moment_clip_reconstruction() {
        let mut sq = tiny_session();
        let video = small_video(4);
        sq.upload_index("v", VideoIndex::from_truth(&video));
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let results = sq.run_query("v", &query).unwrap();
        let top = &results[0];
        let clip = sq.moment_clip("v", top).unwrap();
        assert_eq!(clip.num_objects(), top.track_ids.len());
        assert_eq!(clip.start_frame(), Some(0));
        assert!(clip.span() <= top.end - top.start + 1);
    }

    #[test]
    fn feedback_updates_model() {
        let mut sq = tiny_session();
        let video = small_video(5);
        sq.upload_index("v", VideoIndex::from_truth(&video));
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let results = sq.run_query("v", &query).unwrap();
        assert!(results.len() >= 2);
        let pos = sq.moment_clip("v", &results[0]).unwrap();
        let neg = sq.moment_clip("v", results.last().unwrap()).unwrap();
        let before = sq.model.store.clone();
        let n = sq.apply_feedback(
            &query,
            &[
                Feedback {
                    clip: pos,
                    relevant: true,
                },
                Feedback {
                    clip: neg,
                    relevant: false,
                },
            ],
            &TunerConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        assert_eq!(n, 2);
        assert_ne!(sq.model.store, before, "feedback should update weights");
    }

    #[test]
    fn session_save_load_round_trip() {
        let mut sq = tiny_session();
        let video = small_video(9);
        sq.upload_index("v/one", VideoIndex::from_truth(&video));
        let dir = std::env::temp_dir().join(format!("sketchql-session-{}", std::process::id()));
        sq.save(&dir).unwrap();
        let back = SketchQL::load(&dir).unwrap();
        assert_eq!(back.datasets(), vec!["v/one"]);
        assert_eq!(back.model.store, sq.model.store);
        // The restored session answers queries identically.
        let q = sketchql_datasets::query_clip(EventKind::LeftTurn);
        assert_eq!(
            sq.run_query("v/one", &q).unwrap(),
            back.run_query("v/one", &q).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn colliding_sanitized_names_do_not_overwrite_each_other() {
        // "a/b" and "a_b" both sanitize to "a_b"; before the collision fix
        // the second index file silently overwrote the first and both
        // manifest entries pointed at the survivor.
        let mut sq = tiny_session();
        sq.upload_index("a/b", VideoIndex::from_truth(&small_video(21)));
        sq.upload_index("a_b", VideoIndex::from_truth(&small_video(22)));
        let expect_slash = sq.dataset("a/b").unwrap().tracks.len();
        let expect_under = sq.dataset("a_b").unwrap().tracks.len();
        let dir = std::env::temp_dir().join(format!("sketchql-collide-{}", std::process::id()));
        sq.save(&dir).unwrap();
        let back = SketchQL::load(&dir).unwrap();
        assert_eq!(back.datasets(), vec!["a/b", "a_b"]);
        assert_eq!(back.dataset("a/b").unwrap().tracks.len(), expect_slash);
        assert_eq!(back.dataset("a_b").unwrap().tracks.len(), expect_under);
        assert_ne!(
            serde_json::to_string(back.dataset("a/b").unwrap()).unwrap(),
            serde_json::to_string(back.dataset("a_b").unwrap()).unwrap(),
            "collision fix must keep both indexes distinct on disk"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_session_files_fail_with_a_path_naming_error() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(23)));
        let dir = std::env::temp_dir().join(format!("sketchql-corrupt-{}", std::process::id()));
        sq.save(&dir).unwrap();

        // Truncate the model file mid-JSON: a half-written save.
        let model_path = dir.join("model.json");
        let bytes = std::fs::read(&model_path).unwrap();
        std::fs::write(&model_path, &bytes[..bytes.len() / 2]).unwrap();
        let err = SketchQL::load(&dir).err().expect("load should fail");
        assert!(
            matches!(&err, LoadError::Corrupt { path, .. } if path.ends_with("model.json")),
            "expected Corrupt naming model.json, got {err:?}"
        );
        assert!(err.to_string().contains("model.json"), "{err}");

        // Restore the model, corrupt an index file instead.
        std::fs::write(&model_path, &bytes).unwrap();
        let idx_file = dir.join("indexes").join("v.json");
        std::fs::write(&idx_file, "{not json").unwrap();
        let err = SketchQL::load(&dir).err().expect("load should fail");
        assert!(
            matches!(&err, LoadError::Corrupt { path, .. } if path.ends_with("v.json")),
            "expected Corrupt naming v.json, got {err:?}"
        );

        // A missing file is Io, also path-named.
        std::fs::remove_file(&idx_file).unwrap();
        let err = SketchQL::load(&dir).err().expect("load should fail");
        assert!(
            matches!(&err, LoadError::Io { path, .. } if path.ends_with("v.json")),
            "expected Io naming v.json, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingested_store_survives_save_load_and_serves_queries() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(24)));
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let scan_results = sq.run_query("v", &query).unwrap();

        let cfg = IngestConfig::from_matcher(&sq.matcher_config, &[query.span()]);
        let n = sq.ingest_dataset("v", &cfg).unwrap();
        assert!(n > 0, "ingest produced no vectors");
        // Exhaustive probe so the store path must agree exactly.
        let nlist = sq.store("v").unwrap().nlist();
        sq.stores.get_mut("v").unwrap().nprobe = nlist;
        assert_eq!(sq.run_query("v", &query).unwrap(), scan_results);

        let dir = std::env::temp_dir().join(format!("sketchql-store-rt-{}", std::process::id()));
        sq.save(&dir).unwrap();
        let mut back = SketchQL::load(&dir).unwrap();
        assert_eq!(back.stored_datasets(), vec!["v"]);
        back.stores.get_mut("v").unwrap().nprobe = nlist;
        assert_eq!(
            back.run_query("v", &query).unwrap(),
            scan_results,
            "restored store must answer identically to the scan"
        );
        if telemetry::is_enabled() {
            let report = back.last_query_stats().unwrap();
            assert_eq!(report.store_hits, 1, "query should be served by the store");
            assert!(report.store_probed > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The whole query path must be usable from a shared reference across
    /// threads: the server engine holds one session behind an `Arc` and
    /// runs queries from a worker pool.
    #[test]
    fn session_query_path_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SketchQL>();
        assert_send_sync::<VideoIndex>();
        assert_send_sync::<TrainedModel>();
        assert_send_sync::<Matcher<LearnedSimilarity>>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<SessionError>();
    }

    #[test]
    fn concurrent_queries_on_shared_session_match_sequential() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(8)));
        let sq = std::sync::Arc::new(sq);
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let expected = sq.run_query("v", &query).unwrap();
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sq = std::sync::Arc::clone(&sq);
                    let query = query.clone();
                    scope.spawn(move || sq.run_query("v", &query).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, expected, "concurrent result diverged from solo run");
        }
    }

    #[test]
    fn cancelled_query_reports_cancelled() {
        let mut sq = tiny_session();
        sq.upload_index("v", VideoIndex::from_truth(&small_video(10)));
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = sq.run_query_cancellable("v", &query, &cancel).unwrap_err();
        assert_eq!(err, SessionError::Cancelled(CancelReason::Cancelled));
    }

    #[test]
    fn baseline_similarity_can_be_swapped_in() {
        let mut sq = tiny_session();
        let video = small_video(6);
        sq.upload_index("v", VideoIndex::from_truth(&video));
        let query = sketchql_datasets::query_clip(EventKind::LeftTurn);
        let results = sq
            .run_query_with(
                "v",
                &query,
                crate::similarity::ClassicalSimilarity::new(sketchql_trajectory::DistanceKind::Dtw),
            )
            .unwrap();
        assert!(!results.is_empty());
    }
}
