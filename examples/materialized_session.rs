//! The exploratory-VDBMS workflow: preprocess once, iterate on queries
//! cheaply, persist the session.
//!
//! SketchQL targets *offline, exploratory* moment retrieval — a user runs
//! many sketches against the same uploaded videos. This example shows the
//! machinery that makes iteration cheap:
//!
//! 1. upload + track a video once,
//! 2. materialize per-track window embeddings (EVA-style materialized
//!    views): queries then cost one encoder pass + a dot-product scan,
//! 3. save the session to disk and reload it — no retraining, no
//!    re-tracking.
//!
//! ```text
//! cargo run --release --example materialized_session
//! ```

use sketchql::prelude::*;
use sketchql::{MaterializeConfig, MaterializedWindows};
use sketchql_datasets::{query_clip, EventKind, SceneFamily};
use std::time::Instant;

fn main() {
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 91);

    // 1. Preprocess once.
    let t0 = Instant::now();
    let summary = sq.upload_dataset("traffic", &video);
    println!(
        "preprocessed {:?}: {} frames -> {} tracks in {:.0}ms",
        summary.name,
        summary.frames,
        summary.num_tracks,
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // 2. Materialize window embeddings.
    let sim = sq.model.similarity();
    let t0 = Instant::now();
    let mat = MaterializedWindows::build(
        sq.dataset("traffic").unwrap(),
        &sim,
        MaterializeConfig {
            threads: 4,
            ..Default::default()
        },
    );
    println!(
        "materialized {} window embeddings in {:.0}ms",
        mat.len(),
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // Iterate: four single-object queries against the same video. Compare
    // the live sliding-window search with the materialized scan.
    for kind in [
        EventKind::LeftTurn,
        EventKind::RightTurn,
        EventKind::UTurn,
        EventKind::Loiter,
    ] {
        let query = query_clip(kind);
        let t0 = Instant::now();
        let live = sq.run_query("traffic", &query).unwrap();
        let live_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let fast = mat.query(&sim, &query, 10, 0.45).unwrap();
        let fast_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let truth = video.events_of(kind);
        let hits = |ms: &[sketchql::RetrievedMoment]| {
            ms.iter()
                .take(truth.len())
                .filter(|m| truth.iter().any(|t| t.temporal_iou(m.start, m.end) >= 0.3))
                .count()
        };
        println!(
            "{:<12} live {:>6.1}ms ({}/{} hits @k)   materialized {:>5.1}ms ({}/{} hits @k)",
            kind.name(),
            live_ms,
            hits(&live),
            truth.len(),
            fast_ms,
            hits(&fast),
            truth.len()
        );
    }

    // 3. Persist and reload the session.
    let dir = std::env::temp_dir().join("sketchql-demo-session");
    let t0 = Instant::now();
    sq.save(&dir).expect("save session");
    let restored = SketchQL::load(&dir).expect("load session");
    println!(
        "\nsession saved+reloaded in {:.0}ms; datasets: {:?}",
        t0.elapsed().as_secs_f64() * 1000.0,
        restored.datasets()
    );
    let q = query_clip(EventKind::LeftTurn);
    assert_eq!(
        sq.run_query("traffic", &q).unwrap(),
        restored.run_query("traffic", &q).unwrap(),
        "restored session answers identically"
    );
    println!("restored session answers queries identically — preprocessing is paid once.");
    std::fs::remove_dir_all(&dir).ok();
}
