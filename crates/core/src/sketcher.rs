//! The Sketcher: a headless model of SketchQL's visual query interface.
//!
//! The real system renders a tldraw canvas in the browser; everything the
//! GUI does is modeled here with full semantics so queries can be composed
//! programmatically exactly the way a user composes them interactively
//! (§2.1 of the demo paper):
//!
//! * a [`Canvas`] where typed objects are created, edited, deleted, and
//!   dragged (mouse modes: create / edit / delete / drag),
//! * drag-and-drop **trajectory segments** recorded per object, each
//!   appearing as a box in the [`TrajectoryPanel`],
//! * panel operations — delete, reorder, stretch (speed up / slow down),
//!   and shift (time-align across objects, Figure 4), and
//! * **query replay** ([`Sketcher::compile`]): the composed event as a
//!   [`Clip`], which is both what "Open Query" animates and what the
//!   Matcher executes.

use serde::{Deserialize, Serialize};
use sketchql_trajectory::{BBox, Clip, ObjectClass, Point2, TrajPoint, Trajectory};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an object placed on the canvas.
pub type ObjectId = u64;
/// Identifier of a recorded trajectory segment.
pub type SegmentId = u64;

/// The four mouse modes of the canvas toolbar (cursor / cross / pencil /
/// square icons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MouseMode {
    /// Drag objects to record trajectories (cursor icon).
    Drag,
    /// Click an object to delete it (cross icon).
    Delete,
    /// Click an object to change its type (pencil icon).
    Edit,
    /// Click the canvas to place a new object (square icon).
    Create,
}

/// An object placed on the canvas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanvasObject {
    /// The object's id.
    pub id: ObjectId,
    /// Its type (set at creation, editable with the pencil tool).
    pub class: ObjectClass,
    /// Current position of the object's icon on the canvas.
    pub position: Point2,
    /// Icon size (width, height) in canvas units.
    pub size: (f32, f32),
}

/// Default icon size for a class when placed on the canvas.
fn icon_size(class: ObjectClass) -> (f32, f32) {
    match class {
        ObjectClass::Car => (90.0, 50.0),
        ObjectClass::Truck | ObjectClass::Bus => (130.0, 60.0),
        ObjectClass::Person => (24.0, 60.0),
        ObjectClass::Bicycle | ObjectClass::Motorcycle => (60.0, 40.0),
        ObjectClass::Dog | ObjectClass::Cat => (40.0, 25.0),
        _ => (50.0, 50.0),
    }
}

/// Errors raised by sketcher operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The referenced object does not exist.
    NoSuchObject(ObjectId),
    /// The referenced segment does not exist.
    NoSuchSegment(SegmentId),
    /// Operation requires a different mouse mode.
    WrongMode {
        /// Mode the canvas is in.
        current: MouseMode,
        /// Mode the operation needs.
        needed: MouseMode,
    },
    /// A drag is already in progress.
    DragInProgress,
    /// No drag is in progress.
    NoActiveDrag,
    /// The query has no motion to compile.
    EmptyQuery,
    /// Segment duration must be positive.
    ZeroDuration,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::NoSuchObject(id) => write!(f, "no object with id {id}"),
            SketchError::NoSuchSegment(id) => write!(f, "no segment with id {id}"),
            SketchError::WrongMode { current, needed } => {
                write!(
                    f,
                    "mouse is in {current:?} mode, operation needs {needed:?}"
                )
            }
            SketchError::DragInProgress => write!(f, "finish the current drag first"),
            SketchError::NoActiveDrag => write!(f, "no drag in progress"),
            SketchError::EmptyQuery => write!(f, "query has no trajectory segments"),
            SketchError::ZeroDuration => write!(f, "segment duration must be positive"),
        }
    }
}

impl std::error::Error for SketchError {}

/// One drag-and-drop trajectory segment (a box in the trajectory panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The segment's id.
    pub id: SegmentId,
    /// The object this segment moves.
    pub object: ObjectId,
    /// Recorded mouse path.
    pub path: Vec<Point2>,
    /// Start tick on the panel timeline.
    pub start_tick: u32,
    /// Duration in ticks (panel stretching edits this).
    pub ticks: u32,
}

impl Segment {
    /// End tick (exclusive).
    pub fn end_tick(&self) -> u32 {
        self.start_tick + self.ticks
    }
}

/// The trajectory panel: per-object ordered segment boxes.
///
/// Mirrors the soundtrack-style panel of the UI. Operations correspond to
/// the interactions of §2.1: delete a box, reorder boxes, stretch a box
/// (change duration), and shift a box in time to coordinate objects.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPanel {
    /// Per-object lanes: ordered segment ids.
    lanes: BTreeMap<ObjectId, Vec<SegmentId>>,
}

impl TrajectoryPanel {
    /// Segment ids of an object's lane, in panel order.
    pub fn lane(&self, object: ObjectId) -> &[SegmentId] {
        self.lanes.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Objects with at least one segment.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.lanes.keys().copied()
    }

    fn push(&mut self, object: ObjectId, seg: SegmentId) {
        self.lanes.entry(object).or_default().push(seg);
    }

    fn remove(&mut self, object: ObjectId, seg: SegmentId) {
        if let Some(lane) = self.lanes.get_mut(&object) {
            lane.retain(|&s| s != seg);
            if lane.is_empty() {
                self.lanes.remove(&object);
            }
        }
    }
}

/// The sketcher: canvas + recorded segments + trajectory panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sketcher {
    /// Canvas width in canvas units.
    pub width: f32,
    /// Canvas height in canvas units.
    pub height: f32,
    mode: MouseMode,
    objects: BTreeMap<ObjectId, CanvasObject>,
    segments: BTreeMap<SegmentId, Segment>,
    panel: TrajectoryPanel,
    next_object: ObjectId,
    next_segment: SegmentId,
    active_drag: Option<(ObjectId, Vec<Point2>)>,
}

impl Sketcher {
    /// An empty canvas of the given size.
    pub fn new(width: f32, height: f32) -> Self {
        Sketcher {
            width,
            height,
            mode: MouseMode::Create,
            objects: BTreeMap::new(),
            segments: BTreeMap::new(),
            panel: TrajectoryPanel::default(),
            next_object: 1,
            next_segment: 1,
            active_drag: None,
        }
    }

    /// The default demo canvas (1000x600).
    pub fn demo() -> Self {
        Sketcher::new(1000.0, 600.0)
    }

    /// Current mouse mode.
    pub fn mode(&self) -> MouseMode {
        self.mode
    }

    /// Selects a mouse mode (clicking a toolbar icon).
    pub fn set_mode(&mut self, mode: MouseMode) {
        self.mode = mode;
    }

    /// Objects currently on the canvas.
    pub fn objects(&self) -> impl Iterator<Item = &CanvasObject> {
        self.objects.values()
    }

    /// Looks up an object.
    pub fn object(&self, id: ObjectId) -> Result<&CanvasObject, SketchError> {
        self.objects.get(&id).ok_or(SketchError::NoSuchObject(id))
    }

    /// The trajectory panel.
    pub fn panel(&self) -> &TrajectoryPanel {
        &self.panel
    }

    /// Looks up a segment.
    pub fn segment(&self, id: SegmentId) -> Result<&Segment, SketchError> {
        self.segments.get(&id).ok_or(SketchError::NoSuchSegment(id))
    }

    // ------------------------------------------------------------------
    // Create / edit / delete (square, pencil, cross icons)
    // ------------------------------------------------------------------

    /// Places a new typed object at a canvas position (Create mode).
    pub fn create_object(
        &mut self,
        class: ObjectClass,
        at: Point2,
    ) -> Result<ObjectId, SketchError> {
        self.require_mode(MouseMode::Create)?;
        let id = self.next_object;
        self.next_object += 1;
        self.objects.insert(
            id,
            CanvasObject {
                id,
                class,
                position: at,
                size: icon_size(class),
            },
        );
        Ok(id)
    }

    /// Deletes an object and its segments (Delete mode).
    pub fn delete_object(&mut self, id: ObjectId) -> Result<(), SketchError> {
        self.require_mode(MouseMode::Delete)?;
        self.objects
            .remove(&id)
            .ok_or(SketchError::NoSuchObject(id))?;
        let segs: Vec<SegmentId> = self.panel.lane(id).to_vec();
        for s in segs {
            self.segments.remove(&s);
            self.panel.remove(id, s);
        }
        Ok(())
    }

    /// Changes an object's type (Edit mode).
    pub fn edit_object_type(
        &mut self,
        id: ObjectId,
        class: ObjectClass,
    ) -> Result<(), SketchError> {
        self.require_mode(MouseMode::Edit)?;
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(SketchError::NoSuchObject(id))?;
        obj.class = class;
        obj.size = icon_size(class);
        Ok(())
    }

    fn require_mode(&self, needed: MouseMode) -> Result<(), SketchError> {
        if self.mode == needed {
            Ok(())
        } else {
            Err(SketchError::WrongMode {
                current: self.mode,
                needed,
            })
        }
    }

    // ------------------------------------------------------------------
    // Drag-and-drop trajectory recording (cursor icon)
    // ------------------------------------------------------------------

    /// Starts dragging an object (mouse-down on it in Drag mode).
    pub fn begin_drag(&mut self, object: ObjectId) -> Result<(), SketchError> {
        self.require_mode(MouseMode::Drag)?;
        if self.active_drag.is_some() {
            return Err(SketchError::DragInProgress);
        }
        let obj = self.object(object)?;
        let start = obj.position;
        self.active_drag = Some((object, vec![start]));
        Ok(())
    }

    /// Records a mouse movement during a drag; the object follows.
    pub fn drag_to(&mut self, at: Point2) -> Result<(), SketchError> {
        let (obj_id, path) = self.active_drag.as_mut().ok_or(SketchError::NoActiveDrag)?;
        path.push(at);
        if let Some(obj) = self.objects.get_mut(obj_id) {
            obj.position = at;
        }
        Ok(())
    }

    /// Drops the object (mouse-up), committing the recorded path as a new
    /// segment appended to the object's lane. Returns the segment id.
    ///
    /// The segment's duration defaults to the number of recorded samples
    /// (one tick per mouse sample), which the panel can stretch afterwards.
    pub fn end_drag(&mut self) -> Result<SegmentId, SketchError> {
        let (object, path) = self.active_drag.take().ok_or(SketchError::NoActiveDrag)?;
        let ticks = path.len().max(2) as u32;
        // New segments start where the object's lane currently ends.
        let start_tick = self
            .panel
            .lane(object)
            .iter()
            .map(|s| self.segments[s].end_tick())
            .max()
            .unwrap_or(0);
        let id = self.next_segment;
        self.next_segment += 1;
        self.segments.insert(
            id,
            Segment {
                id,
                object,
                path,
                start_tick,
                ticks,
            },
        );
        self.panel.push(object, id);
        Ok(id)
    }

    /// Convenience: drags an object along a whole path in one call.
    pub fn drag_object_along(
        &mut self,
        object: ObjectId,
        path: &[Point2],
    ) -> Result<SegmentId, SketchError> {
        self.begin_drag(object)?;
        for p in path {
            self.drag_to(*p)?;
        }
        self.end_drag()
    }

    // ------------------------------------------------------------------
    // Trajectory panel operations
    // ------------------------------------------------------------------

    /// Deletes a segment box from the panel.
    pub fn delete_segment(&mut self, id: SegmentId) -> Result<(), SketchError> {
        let seg = self
            .segments
            .remove(&id)
            .ok_or(SketchError::NoSuchSegment(id))?;
        self.panel.remove(seg.object, id);
        Ok(())
    }

    /// Reorders a segment box to position `index` within its object's lane,
    /// then re-packs the lane's boxes back-to-back in the new order (the
    /// paper's example: swap a left turn and a straight stretch).
    pub fn reorder_segment(&mut self, id: SegmentId, index: usize) -> Result<(), SketchError> {
        let object = self.segment(id)?.object;
        let lane: Vec<SegmentId> = self.panel.lane(object).to_vec();
        let mut order: Vec<SegmentId> = lane.iter().copied().filter(|&s| s != id).collect();
        let index = index.min(order.len());
        order.insert(index, id);
        // Re-pack sequentially starting at the lane's original start.
        let mut tick = lane
            .iter()
            .map(|s| self.segments[s].start_tick)
            .min()
            .unwrap_or(0);
        for s in &order {
            let seg = self.segments.get_mut(s).expect("lane segment exists");
            seg.start_tick = tick;
            tick = seg.end_tick();
        }
        if let Some(l) = self.panel.lanes.get_mut(&object) {
            *l = order;
        }
        Ok(())
    }

    /// Stretches (or shrinks) a segment box to a new duration — the
    /// "make the left turn faster/slower" edit. Later boxes in the lane are
    /// shifted to remain back-to-back relative to their previous gaps.
    pub fn stretch_segment(&mut self, id: SegmentId, new_ticks: u32) -> Result<(), SketchError> {
        if new_ticks == 0 {
            return Err(SketchError::ZeroDuration);
        }
        let (object, old_end) = {
            let seg = self.segment(id)?;
            (seg.object, seg.end_tick())
        };
        let delta = new_ticks as i64 - self.segments[&id].ticks as i64;
        self.segments.get_mut(&id).expect("checked").ticks = new_ticks;
        // Shift subsequent boxes in this lane by delta.
        let lane: Vec<SegmentId> = self.panel.lane(object).to_vec();
        for s in lane {
            if s == id {
                continue;
            }
            let seg = self.segments.get_mut(&s).expect("lane segment exists");
            if seg.start_tick >= old_end {
                seg.start_tick = (seg.start_tick as i64 + delta).max(0) as u32;
            }
        }
        Ok(())
    }

    /// Simplifies a segment's recorded mouse path with RDP at tolerance
    /// `epsilon` (canvas units), removing hand jitter while keeping the
    /// stroke's corners. Duration is unchanged.
    pub fn simplify_segment(&mut self, id: SegmentId, epsilon: f32) -> Result<(), SketchError> {
        let seg = self
            .segments
            .get_mut(&id)
            .ok_or(SketchError::NoSuchSegment(id))?;
        seg.path = sketchql_trajectory::simplify_path(&seg.path, epsilon);
        Ok(())
    }

    /// Moves a segment box to start at `tick` (horizontal drag on the
    /// panel) — the multi-object synchronization edit of Figure 4.
    pub fn shift_segment(&mut self, id: SegmentId, tick: u32) -> Result<(), SketchError> {
        let seg = self
            .segments
            .get_mut(&id)
            .ok_or(SketchError::NoSuchSegment(id))?;
        seg.start_tick = tick;
        Ok(())
    }

    /// Aligns segment `a` to start at the same tick as segment `b`.
    pub fn align_segments(&mut self, a: SegmentId, b: SegmentId) -> Result<(), SketchError> {
        let target = self.segment(b)?.start_tick;
        self.shift_segment(a, target)
    }

    // ------------------------------------------------------------------
    // Query replay / compilation
    // ------------------------------------------------------------------

    /// Total timeline length in ticks.
    pub fn timeline_ticks(&self) -> u32 {
        self.segments
            .values()
            .map(Segment::end_tick)
            .max()
            .unwrap_or(0)
    }

    /// Compiles the sketch into the visual query clip C_Q ("Open Query"
    /// replays exactly this clip; "Run" sends it to the Matcher).
    ///
    /// Semantics: each object's icon box rides along its segments' paths
    /// (arc-length parameterized over each segment's tick span); between
    /// segments the object holds its position; objects with no segments are
    /// stationary context objects held at their canvas position.
    pub fn compile(&self) -> Result<Clip, SketchError> {
        if self.segments.is_empty() {
            return Err(SketchError::EmptyQuery);
        }
        let total = self.timeline_ticks();
        let mut trajectories = Vec::new();
        for obj in self.objects.values() {
            let lane = self.panel.lane(obj.id);
            let mut points: Vec<TrajPoint> = Vec::with_capacity(total as usize);
            // Sorted copies of this object's segments by start tick.
            let mut segs: Vec<&Segment> = lane.iter().map(|s| &self.segments[s]).collect();
            segs.sort_by_key(|s| s.start_tick);
            // Walk the timeline, holding position outside segments.
            let mut pos = segs
                .first()
                .and_then(|s| s.path.first().copied())
                .unwrap_or(obj.position);
            for t in 0..total.max(1) {
                let mut current = None;
                for s in &segs {
                    if t >= s.start_tick && t < s.end_tick() {
                        current = Some(*s);
                        break;
                    }
                }
                if let Some(s) = current {
                    let frac = if s.ticks <= 1 {
                        1.0
                    } else {
                        (t - s.start_tick) as f32 / (s.ticks - 1) as f32
                    };
                    pos = sketchql_datasets::sample_path(&s.path, frac);
                }
                points.push(TrajPoint::new(
                    t,
                    BBox::new(pos.x, pos.y, obj.size.0, obj.size.1),
                ));
            }
            trajectories.push(Trajectory::from_points(obj.id, obj.class, points));
        }
        Ok(Clip::new(self.width, self.height, trajectories))
    }

    /// "Open Query": the per-tick object positions the replay window
    /// animates. Equivalent to [`Self::compile`] but framed for display.
    pub fn replay(&self) -> Result<Vec<Vec<(ObjectId, BBox)>>, SketchError> {
        let clip = self.compile()?;
        let total = clip.span();
        let mut frames = Vec::with_capacity(total as usize);
        for t in 0..total {
            let mut frame = Vec::new();
            for traj in &clip.objects {
                if let Some(bb) = traj.bbox_at(t) {
                    frame.push((traj.id, bb));
                }
            }
            frames.push(frame);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f32, f32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    fn sketcher_with_car() -> (Sketcher, ObjectId) {
        let mut s = Sketcher::demo();
        let car = s
            .create_object(ObjectClass::Car, Point2::new(100.0, 300.0))
            .unwrap();
        (s, car)
    }

    #[test]
    fn create_requires_create_mode() {
        let mut s = Sketcher::demo();
        s.set_mode(MouseMode::Drag);
        let err = s.create_object(ObjectClass::Car, Point2::ZERO).unwrap_err();
        assert!(matches!(
            err,
            SketchError::WrongMode {
                needed: MouseMode::Create,
                ..
            }
        ));
    }

    #[test]
    fn create_edit_delete_lifecycle() {
        let (mut s, car) = sketcher_with_car();
        assert_eq!(s.object(car).unwrap().class, ObjectClass::Car);
        s.set_mode(MouseMode::Edit);
        s.edit_object_type(car, ObjectClass::Truck).unwrap();
        assert_eq!(s.object(car).unwrap().class, ObjectClass::Truck);
        s.set_mode(MouseMode::Delete);
        s.delete_object(car).unwrap();
        assert!(s.object(car).is_err());
    }

    #[test]
    fn delete_object_removes_its_segments() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        let seg = s
            .drag_object_along(car, &pts(&[(150.0, 300.0), (200.0, 300.0)]))
            .unwrap();
        s.set_mode(MouseMode::Delete);
        s.delete_object(car).unwrap();
        assert!(s.segment(seg).is_err());
        assert!(s.panel().lane(car).is_empty());
    }

    #[test]
    fn drag_records_path_and_moves_object() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        s.begin_drag(car).unwrap();
        s.drag_to(Point2::new(200.0, 300.0)).unwrap();
        s.drag_to(Point2::new(300.0, 250.0)).unwrap();
        let seg = s.end_drag().unwrap();
        // Path includes the start position plus the two moves.
        assert_eq!(s.segment(seg).unwrap().path.len(), 3);
        assert_eq!(s.object(car).unwrap().position, Point2::new(300.0, 250.0));
        assert_eq!(s.panel().lane(car), &[seg]);
    }

    #[test]
    fn nested_drags_are_rejected() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        s.begin_drag(car).unwrap();
        assert_eq!(s.begin_drag(car).unwrap_err(), SketchError::DragInProgress);
        s.end_drag().unwrap();
        assert_eq!(s.end_drag().unwrap_err(), SketchError::NoActiveDrag);
    }

    #[test]
    fn segments_append_back_to_back() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        let a = s
            .drag_object_along(car, &pts(&[(200.0, 300.0), (300.0, 300.0)]))
            .unwrap();
        let b = s
            .drag_object_along(car, &pts(&[(300.0, 200.0), (300.0, 100.0)]))
            .unwrap();
        let sa = s.segment(a).unwrap().clone();
        let sb = s.segment(b).unwrap().clone();
        assert_eq!(sb.start_tick, sa.end_tick());
    }

    #[test]
    fn stretch_changes_duration_and_shifts_following() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        let a = s
            .drag_object_along(car, &pts(&[(200.0, 300.0), (300.0, 300.0)]))
            .unwrap();
        let b = s
            .drag_object_along(car, &pts(&[(300.0, 200.0), (300.0, 100.0)]))
            .unwrap();
        let b_start_before = s.segment(b).unwrap().start_tick;
        s.stretch_segment(a, 30).unwrap();
        assert_eq!(s.segment(a).unwrap().ticks, 30);
        let shift = 30 - 3; // new - old duration
        assert_eq!(s.segment(b).unwrap().start_tick, b_start_before + shift);
        assert_eq!(
            s.stretch_segment(a, 0).unwrap_err(),
            SketchError::ZeroDuration
        );
    }

    #[test]
    fn reorder_repacks_lane() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        let a = s
            .drag_object_along(car, &pts(&[(200.0, 300.0), (300.0, 300.0)]))
            .unwrap();
        let b = s
            .drag_object_along(car, &pts(&[(300.0, 200.0), (300.0, 100.0)]))
            .unwrap();
        s.reorder_segment(b, 0).unwrap();
        assert_eq!(s.panel().lane(car), &[b, a]);
        let sb = s.segment(b).unwrap().clone();
        let sa = s.segment(a).unwrap().clone();
        assert_eq!(sb.start_tick, 0);
        assert_eq!(sa.start_tick, sb.end_tick());
    }

    #[test]
    fn shift_and_align_synchronize_objects() {
        // The Figure 4 scenario: person then car drawn sequentially; align
        // the car's box with the person's so they move simultaneously.
        let mut s = Sketcher::demo();
        let person = s
            .create_object(ObjectClass::Person, Point2::new(200.0, 300.0))
            .unwrap();
        let car = s
            .create_object(ObjectClass::Car, Point2::new(500.0, 80.0))
            .unwrap();
        s.set_mode(MouseMode::Drag);
        let p_seg = s
            .drag_object_along(person, &pts(&[(400.0, 300.0), (600.0, 300.0)]))
            .unwrap();
        let c_seg = s
            .drag_object_along(car, &pts(&[(500.0, 250.0), (500.0, 450.0)]))
            .unwrap();
        // Both lanes start at 0 independently (different objects), so give
        // the car's segment a later start first to mimic sequential drawing.
        s.shift_segment(c_seg, 50).unwrap();
        assert_ne!(
            s.segment(c_seg).unwrap().start_tick,
            s.segment(p_seg).unwrap().start_tick
        );
        s.align_segments(c_seg, p_seg).unwrap();
        assert_eq!(
            s.segment(c_seg).unwrap().start_tick,
            s.segment(p_seg).unwrap().start_tick
        );
    }

    #[test]
    fn simplify_segment_removes_jitter_keeps_shape() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        // A noisy horizontal drag.
        let noisy: Vec<Point2> = (0..60)
            .map(|i| {
                Point2::new(
                    150.0 + i as f32 * 10.0,
                    300.0 + if i % 2 == 0 { 2.0 } else { -2.0 },
                )
            })
            .collect();
        let seg = s.drag_object_along(car, &noisy).unwrap();
        let before = s.segment(seg).unwrap().path.len();
        s.simplify_segment(seg, 5.0).unwrap();
        let after = s.segment(seg).unwrap().path.len();
        assert!(after < before / 4, "{before} -> {after}");
        // Duration (panel box) unchanged; compile still spans the same ticks.
        assert_eq!(s.segment(seg).unwrap().ticks, 61);
        let clip = s.compile().unwrap();
        assert!(clip.objects[0].displacement() > 500.0);
    }

    #[test]
    fn compile_produces_moving_clip() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        s.drag_object_along(
            car,
            &pts(&[
                (200.0, 450.0),
                (400.0, 450.0),
                (600.0, 450.0),
                (640.0, 300.0),
                (650.0, 100.0),
            ]),
        )
        .unwrap();
        let clip = s.compile().unwrap();
        assert_eq!(clip.num_objects(), 1);
        assert_eq!(clip.classes(), vec![ObjectClass::Car]);
        let traj = &clip.objects[0];
        assert!(traj.len() >= 5);
        assert!(traj.displacement() > 100.0);
    }

    #[test]
    fn compile_empty_query_is_error() {
        let (s, _) = sketcher_with_car();
        assert_eq!(s.compile().unwrap_err(), SketchError::EmptyQuery);
    }

    #[test]
    fn compile_holds_position_between_segments() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        let a = s
            .drag_object_along(car, &pts(&[(200.0, 300.0), (300.0, 300.0)]))
            .unwrap();
        let b = s
            .drag_object_along(car, &pts(&[(300.0, 300.0), (300.0, 100.0)]))
            .unwrap();
        // Insert a gap between the two segments.
        let gap_start = s.segment(a).unwrap().end_tick() + 10;
        s.shift_segment(b, gap_start).unwrap();
        let clip = s.compile().unwrap();
        let traj = &clip.objects[0];
        // During the gap the object sits at the end of segment a.
        let mid_gap = s.segment(a).unwrap().end_tick() + 5;
        let bb = traj.bbox_at(mid_gap).unwrap();
        assert!((bb.cx - 300.0).abs() < 1e-3);
        assert!((bb.cy - 300.0).abs() < 1e-3);
    }

    #[test]
    fn stretch_slows_down_motion_in_compiled_clip() {
        let (mut s1, car1) = sketcher_with_car();
        s1.set_mode(MouseMode::Drag);
        let path = pts(&[(200.0, 300.0), (400.0, 300.0), (600.0, 300.0)]);
        let seg1 = s1.drag_object_along(car1, &path).unwrap();
        s1.stretch_segment(seg1, 10).unwrap();
        let fast = s1.compile().unwrap();

        let (mut s2, car2) = sketcher_with_car();
        s2.set_mode(MouseMode::Drag);
        let seg2 = s2.drag_object_along(car2, &path).unwrap();
        s2.stretch_segment(seg2, 40).unwrap();
        let slow = s2.compile().unwrap();

        // Same spatial path, different durations.
        assert!(slow.span() > fast.span() * 3);
        let v_fast = fast.objects[0].velocities()[0].norm();
        let v_slow = slow.objects[0].velocities()[0].norm();
        assert!(v_fast > v_slow * 2.0);
    }

    #[test]
    fn replay_matches_compiled_clip() {
        let (mut s, car) = sketcher_with_car();
        s.set_mode(MouseMode::Drag);
        s.drag_object_along(car, &pts(&[(200.0, 300.0), (400.0, 300.0)]))
            .unwrap();
        let frames = s.replay().unwrap();
        let clip = s.compile().unwrap();
        assert_eq!(frames.len() as u32, clip.span());
        assert_eq!(frames[0][0].0, car);
    }

    #[test]
    fn stationary_context_objects_appear_in_clip() {
        let mut s = Sketcher::demo();
        let car = s
            .create_object(ObjectClass::Car, Point2::new(100.0, 300.0))
            .unwrap();
        let _hydrant = s
            .create_object(ObjectClass::FireHydrant, Point2::new(700.0, 200.0))
            .unwrap();
        s.set_mode(MouseMode::Drag);
        s.drag_object_along(car, &pts(&[(200.0, 300.0), (400.0, 300.0)]))
            .unwrap();
        let clip = s.compile().unwrap();
        assert_eq!(clip.num_objects(), 2);
        let hydrant_traj = clip
            .objects
            .iter()
            .find(|t| t.class == ObjectClass::FireHydrant)
            .unwrap();
        assert!(hydrant_traj.displacement() < 1e-3);
    }
}
