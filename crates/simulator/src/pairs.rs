//! Contrastive training data generation.
//!
//! The paper's key training idea: "generate motions in a 3D space and create
//! 2D video clips by recording the event from virtual cameras placed at
//! random locations ... 2D video clips from the different cameras of the
//! same 3D clip are positive (similar) examples, and 2D video clips from
//! different 3D clips are negative (dissimilar) examples."
//!
//! [`RandomSceneSampler`] synthesizes diverse random 3D events;
//! [`PairGenerator`] records each event from multiple random cameras (with
//! optional shake and temporal augmentation) and emits `(anchor, positive)`
//! clip pairs for the NT-Xent objective.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_trajectory::{Clip, ObjectClass, Point2};

use crate::agent::Agent;
use crate::camera::{Camera, CameraRig, ShakeConfig};
use crate::motion::{MotionPrimitive, MotionScript};
use crate::scene::Scene3D;

/// Mobile classes the sampler draws event participants from, weighted
/// towards the traffic-surveillance domain of the demo.
const SAMPLE_CLASSES: &[ObjectClass] = &[
    ObjectClass::Car,
    ObjectClass::Car,
    ObjectClass::Car,
    ObjectClass::Person,
    ObjectClass::Person,
    ObjectClass::Truck,
    ObjectClass::Bus,
    ObjectClass::Bicycle,
    ObjectClass::Motorcycle,
    ObjectClass::Dog,
];

/// Configuration of the random 3D event sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Maximum number of objects per event (1..=N, uniform).
    pub max_objects: usize,
    /// Number of motion primitives per object's script.
    pub min_primitives: usize,
    /// Upper bound (inclusive) on primitives per script.
    pub max_primitives: usize,
    /// Frame rate of generated scenes.
    pub fps: f32,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            max_objects: 2,
            min_primitives: 1,
            max_primitives: 3,
            fps: 30.0,
        }
    }
}

/// Samples random 3D events: random agents with random composite motion
/// scripts around the world origin.
#[derive(Debug, Clone)]
pub struct RandomSceneSampler {
    /// Sampler parameters.
    pub config: SamplerConfig,
}

impl RandomSceneSampler {
    /// Creates a sampler.
    pub fn new(config: SamplerConfig) -> Self {
        RandomSceneSampler { config }
    }

    /// Samples one random primitive. Durations are chosen so one script
    /// spans roughly 1-4 seconds of video.
    fn sample_primitive<R: Rng>(&self, rng: &mut R) -> MotionPrimitive {
        let frames = rng.gen_range(20..=45);
        match rng.gen_range(0..10) {
            0..=3 => MotionPrimitive::Straight {
                frames,
                speed: rng.gen_range(0.6..1.4),
            },
            4..=6 => MotionPrimitive::Turn {
                frames,
                // Anything from a gentle 30° bend through a full U-turn
                // (195°), either direction.
                angle: rng.gen_range(0.5..3.4) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                speed: rng.gen_range(0.5..1.2),
            },
            7 => MotionPrimitive::Stop {
                frames: rng.gen_range(10..=30),
            },
            8 => MotionPrimitive::Accelerate {
                frames,
                from: rng.gen_range(0.0..0.5),
                to: rng.gen_range(0.8..1.5),
            },
            _ => MotionPrimitive::SCurve {
                frames,
                angle: rng.gen_range(0.3..0.9),
                speed: rng.gen_range(0.6..1.2),
            },
        }
    }

    /// Samples one random script for an agent of the given class.
    fn sample_script<R: Rng>(&self, class: ObjectClass, rng: &mut R) -> MotionScript {
        let base_speed = crate::agent::class_priors(class).speed_mps * rng.gen_range(0.7..1.3);
        let start = Point2::new(rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0));
        let heading = rng.gen_range(0.0..std::f32::consts::TAU);
        let mut script = MotionScript::new(start, heading, base_speed);
        let n_prim = rng.gen_range(self.config.min_primitives..=self.config.max_primitives);
        for _ in 0..n_prim {
            script = script.then(self.sample_primitive(rng));
        }
        script
    }

    /// Samples one random 3D scene (event).
    ///
    /// Two-object scenes are *structured* three times out of four —
    /// crossing, parallel (follow/overtake), or opposite passes — because
    /// multi-object queries are about inter-object geometry, and purely
    /// independent random walks almost never exhibit it.
    pub fn sample_scene<R: Rng>(&self, rng: &mut R) -> Scene3D {
        let n_obj = rng.gen_range(1..=self.config.max_objects);
        let mut scene = Scene3D::new(self.config.fps);
        if n_obj >= 2 {
            let class_a = SAMPLE_CLASSES[rng.gen_range(0..SAMPLE_CLASSES.len())];
            let class_b = SAMPLE_CLASSES[rng.gen_range(0..SAMPLE_CLASSES.len())];
            let speed = |c: ObjectClass, rng: &mut R| {
                crate::agent::class_priors(c).speed_mps * rng.gen_range(0.7..1.3)
            };
            let frames = rng.gen_range(50..=100u32);
            let heading = rng.gen_range(0.0..std::f32::consts::TAU);
            let meet = Point2::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            let back = |h: f32, d: f32| meet - Point2::new(h.cos(), h.sin()) * d;
            match rng.gen_range(0..4) {
                0 => {
                    // Crossing at a random (not necessarily right) angle.
                    let cross = heading
                        + rng.gen_range(0.6..2.6) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    let va = speed(class_a, rng);
                    let vb = speed(class_b, rng);
                    let da = va / self.config.fps * frames as f32 * 0.5;
                    let db = vb / self.config.fps * frames as f32 * 0.5;
                    scene = scene
                        .with_object(
                            Agent::sample(class_a, rng),
                            MotionScript::new(back(heading, da), heading, va)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        )
                        .with_object(
                            Agent::sample(class_b, rng),
                            MotionScript::new(back(cross, db), cross, vb)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        );
                }
                1 => {
                    // Parallel motion: follow or overtake.
                    let lateral =
                        Point2::new(-heading.sin(), heading.cos()) * rng.gen_range(1.5..5.0);
                    let va = speed(class_a, rng);
                    let vb = va * rng.gen_range(0.4..1.0);
                    scene = scene
                        .with_object(
                            Agent::sample(class_a, rng),
                            MotionScript::new(back(heading, 14.0), heading, va)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        )
                        .with_object(
                            Agent::sample(class_b, rng),
                            MotionScript::new(back(heading, 4.0) + lateral, heading, vb)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        );
                }
                2 => {
                    // Opposite passes.
                    let opp = heading + std::f32::consts::PI;
                    let lateral =
                        Point2::new(-heading.sin(), heading.cos()) * rng.gen_range(1.5..4.0);
                    let va = speed(class_a, rng);
                    let vb = speed(class_b, rng);
                    let da = va / self.config.fps * frames as f32 * 0.5;
                    let db = vb / self.config.fps * frames as f32 * 0.5;
                    scene = scene
                        .with_object(
                            Agent::sample(class_a, rng),
                            MotionScript::new(back(heading, da), heading, va)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        )
                        .with_object(
                            Agent::sample(class_b, rng),
                            MotionScript::new(back(opp, db) + lateral, opp, vb)
                                .then(MotionPrimitive::Straight { frames, speed: 1.0 }),
                        );
                }
                _ => {
                    // Independent random motions (with entrance stagger).
                    for class in [class_a, class_b] {
                        let mut script = self.sample_script(class, rng);
                        if rng.gen_bool(0.5) {
                            script = script.starting_at(rng.gen_range(0..15));
                        }
                        scene = scene.with_object(Agent::sample(class, rng), script);
                    }
                }
            }
        } else {
            let class = SAMPLE_CLASSES[rng.gen_range(0..SAMPLE_CLASSES.len())];
            let script = self.sample_script(class, rng);
            scene = scene.with_object(Agent::sample(class, rng), script);
        }
        scene
    }
}

/// Configuration of the contrastive pair generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairGenConfig {
    /// Random camera distance bounds (meters).
    pub cam_radius: (f32, f32),
    /// Camera shake applied while recording (sigma 0 disables).
    pub shake: ShakeConfig,
    /// Probability of temporally stretching one view (speed augmentation).
    pub stretch_prob: f64,
    /// Bounds of the stretch factor when applied.
    pub stretch_range: (f32, f32),
    /// Minimum frames an object must be visible for a view to be accepted.
    pub min_visible: usize,
    /// Attempts at sampling an acceptable camera before giving up on a
    /// scene.
    pub max_camera_tries: usize,
    /// Ablation: record both views from the *same* camera pose (only shake
    /// and temporal augmentation differ). The paper's multi-camera recipe
    /// sets this to `false`; the A1 ablation flips it to show that camera
    /// diversity is what buys viewpoint invariance.
    pub same_camera: bool,
    /// Probability of converting the positive view into a *schematic*
    /// clip: constant-size boxes riding the same center path. This is what
    /// a user's sketch looks like (canvas icons have fixed size), so the
    /// augmentation closes the sketch-to-video domain gap that pure
    /// camera-view pairs leave open.
    pub sketchify_prob: f64,
    /// Probability of padding a view with *parked* frames (the object
    /// holding its first/last pose) on either side, applied independently
    /// per view and per side. Matcher windows routinely extend past an
    /// event into idle time; this augmentation teaches the encoder that
    /// idle padding does not change the event.
    pub pad_prob: f64,
    /// Bounds on the number of parked frames added per padded side.
    pub pad_range: (u32, u32),
}

impl Default for PairGenConfig {
    fn default() -> Self {
        PairGenConfig {
            cam_radius: (25.0, 70.0),
            shake: ShakeConfig::default(),
            stretch_prob: 0.5,
            stretch_range: (0.6, 1.6),
            min_visible: 12,
            max_camera_tries: 12,
            same_camera: false,
            sketchify_prob: 0.4,
            pad_prob: 0.35,
            pad_range: (8, 45),
        }
    }
}

/// Pads a clip with parked frames: `before` frames holding each object's
/// first pose are prepended and `after` frames holding its last pose are
/// appended (all frame indices shift by `before`).
pub fn pad_with_hold(clip: &Clip, before: u32, after: u32) -> Clip {
    let objects = clip
        .objects
        .iter()
        .map(|t| {
            let pts = t.points();
            if pts.is_empty() {
                return t.clone();
            }
            let mut out = Vec::with_capacity(pts.len() + (before + after) as usize);
            let first = pts[0];
            for f in 0..before {
                out.push(sketchql_trajectory::TrajPoint::new(f, first.bbox));
            }
            for p in pts {
                out.push(sketchql_trajectory::TrajPoint::new(
                    p.frame + before,
                    p.bbox,
                ));
            }
            let last = *pts.last().expect("non-empty");
            for k in 1..=after {
                out.push(sketchql_trajectory::TrajPoint::new(
                    last.frame + before + k,
                    last.bbox,
                ));
            }
            sketchql_trajectory::Trajectory::from_points(t.id, t.class, out)
        })
        .collect();
    Clip::new(clip.frame_width, clip.frame_height, objects)
}

/// Converts a clip into its schematic ("sketch-like") form: every object
/// keeps its center path but is drawn with a constant, average-sized box —
/// exactly how an object icon rides a drag path on the sketcher canvas.
pub fn sketchify(clip: &Clip) -> Clip {
    let objects = clip
        .objects
        .iter()
        .map(|t| {
            let pts = t.points();
            if pts.is_empty() {
                return t.clone();
            }
            let n = pts.len() as f32;
            let mean_w: f32 = pts.iter().map(|p| p.bbox.w).sum::<f32>() / n;
            let mean_h: f32 = pts.iter().map(|p| p.bbox.h).sum::<f32>() / n;
            let new_pts = pts
                .iter()
                .map(|p| {
                    sketchql_trajectory::TrajPoint::new(
                        p.frame,
                        sketchql_trajectory::BBox::new(p.bbox.cx, p.bbox.cy, mean_w, mean_h),
                    )
                })
                .collect();
            sketchql_trajectory::Trajectory::from_points(t.id, t.class, new_pts)
        })
        .collect();
    Clip::new(clip.frame_width, clip.frame_height, objects)
}

/// A training pair: two 2D views of one 3D event.
#[derive(Debug, Clone)]
pub struct TrainingPair {
    /// First view (the anchor).
    pub anchor: Clip,
    /// Second view (the positive).
    pub positive: Clip,
}

/// Records random scenes from random cameras into contrastive pairs.
#[derive(Debug, Clone)]
pub struct PairGenerator {
    /// Scene sampler.
    pub sampler: RandomSceneSampler,
    /// Recording parameters.
    pub config: PairGenConfig,
}

impl PairGenerator {
    /// Creates a generator with the given sampler and recording config.
    pub fn new(sampler: RandomSceneSampler, config: PairGenConfig) -> Self {
        PairGenerator { sampler, config }
    }

    /// A generator with default settings.
    pub fn default_generator() -> Self {
        PairGenerator::new(
            RandomSceneSampler::new(SamplerConfig::default()),
            PairGenConfig::default(),
        )
    }

    /// Records `scene` from one random acceptable camera; `None` if no
    /// sampled camera keeps every object visible long enough.
    pub fn record_view<R: Rng>(&self, scene: &Scene3D, rng: &mut R) -> Option<Clip> {
        let center = scene.center();
        for _ in 0..self.config.max_camera_tries {
            let cam = Camera::sample_around(
                center,
                self.config.cam_radius.0,
                self.config.cam_radius.1,
                rng,
            );
            let mut rig = CameraRig::new(cam, self.config.shake);
            let clip = scene.record(&mut rig, rng);
            let ok = clip
                .objects
                .iter()
                .all(|t| t.len() >= self.config.min_visible);
            if ok {
                return Some(self.maybe_stretch(clip, rng));
            }
        }
        None
    }

    /// Temporal augmentation: resamples the clip to a different length with
    /// probability `stretch_prob`, simulating faster/slower versions of the
    /// same event (which must still match).
    fn maybe_stretch<R: Rng>(&self, clip: Clip, rng: &mut R) -> Clip {
        if !rng.gen_bool(self.config.stretch_prob) {
            return clip;
        }
        let factor = rng.gen_range(self.config.stretch_range.0..self.config.stretch_range.1);
        let span = clip.span().max(2);
        let new_len = ((span as f32 * factor) as usize).max(8);
        clip.resampled(new_len)
    }

    /// Generates one `(anchor, positive)` pair (two views of a fresh random
    /// scene). Retries until a scene admits two acceptable views.
    pub fn sample_pair<R: Rng>(&self, rng: &mut R) -> TrainingPair {
        loop {
            let scene = self.sampler.sample_scene(rng);
            if self.config.same_camera {
                // Ablation: one camera pose, two recordings (shake and
                // stretch still differ).
                let center = scene.center();
                let cam = Camera::sample_around(
                    center,
                    self.config.cam_radius.0,
                    self.config.cam_radius.1,
                    rng,
                );
                let record = |rng: &mut R| -> Option<Clip> {
                    let mut rig = CameraRig::new(cam, self.config.shake);
                    let clip = scene.record(&mut rig, rng);
                    clip.objects
                        .iter()
                        .all(|t| t.len() >= self.config.min_visible)
                        .then(|| self.maybe_stretch(clip, rng))
                };
                let (Some(anchor), Some(positive)) = (record(rng), record(rng)) else {
                    continue;
                };
                let anchor = self.maybe_pad(anchor, rng);
                let positive = self.maybe_pad(self.maybe_sketchify(positive, rng), rng);
                return TrainingPair { anchor, positive };
            }
            let Some(anchor) = self.record_view(&scene, rng) else {
                continue;
            };
            let Some(positive) = self.record_view(&scene, rng) else {
                continue;
            };
            let anchor = self.maybe_pad(anchor, rng);
            let positive = self.maybe_pad(self.maybe_sketchify(positive, rng), rng);
            return TrainingPair { anchor, positive };
        }
    }

    /// Applies the schematic-view augmentation with the configured
    /// probability.
    fn maybe_sketchify<R: Rng>(&self, clip: Clip, rng: &mut R) -> Clip {
        if self.config.sketchify_prob > 0.0 && rng.gen_bool(self.config.sketchify_prob) {
            sketchify(&clip)
        } else {
            clip
        }
    }

    /// Applies independent parked-padding on each side with the configured
    /// probability.
    fn maybe_pad<R: Rng>(&self, clip: Clip, rng: &mut R) -> Clip {
        if self.config.pad_prob <= 0.0 {
            return clip;
        }
        let (lo, hi) = self.config.pad_range;
        let before = if rng.gen_bool(self.config.pad_prob) {
            rng.gen_range(lo..=hi)
        } else {
            0
        };
        let after = if rng.gen_bool(self.config.pad_prob) {
            rng.gen_range(lo..=hi)
        } else {
            0
        };
        if before == 0 && after == 0 {
            clip
        } else {
            pad_with_hold(&clip, before, after)
        }
    }

    /// Generates a batch of independent pairs. Pairs at different indices
    /// come from different 3D events, so they serve as mutual negatives in
    /// the NT-Xent batch.
    pub fn sample_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<TrainingPair> {
        (0..batch).map(|_| self.sample_pair(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_respects_object_bounds() {
        let s = RandomSceneSampler::new(SamplerConfig {
            max_objects: 3,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let scene = s.sample_scene(&mut rng);
            assert!((1..=3).contains(&scene.objects.len()));
            for o in &scene.objects {
                assert!(!o.script.primitives.is_empty());
                assert!(o.script.primitives.len() <= 3);
            }
        }
    }

    #[test]
    fn two_object_scenes_include_structured_interactions() {
        let s = RandomSceneSampler::new(SamplerConfig {
            max_objects: 2,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(77);
        let mut crossing_like = 0;
        let mut n2 = 0;
        for _ in 0..120 {
            let scene = s.sample_scene(&mut rng);
            if scene.objects.len() != 2 {
                continue;
            }
            n2 += 1;
            // Do the two agents ever come within 5 m of each other?
            let poses = scene.poses();
            let min_d = poses[0]
                .iter()
                .zip(&poses[1])
                .map(|(a, b)| a.position.distance(&b.position))
                .fold(f32::INFINITY, f32::min);
            if min_d < 5.0 {
                crossing_like += 1;
            }
        }
        assert!(n2 > 20, "need a sample of 2-object scenes, got {n2}");
        assert!(
            crossing_like * 2 > n2,
            "structured interactions should dominate: {crossing_like}/{n2}"
        );
    }

    #[test]
    fn sampler_produces_diverse_classes() {
        let s = RandomSceneSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut classes = std::collections::HashSet::new();
        for _ in 0..60 {
            let scene = s.sample_scene(&mut rng);
            for o in &scene.objects {
                classes.insert(o.agent.class);
            }
        }
        assert!(
            classes.len() >= 4,
            "expected class diversity, got {classes:?}"
        );
    }

    #[test]
    fn record_view_keeps_objects_visible() {
        let gen = PairGenerator::default_generator();
        let mut rng = StdRng::seed_from_u64(3);
        let scene = gen.sampler.sample_scene(&mut rng);
        if let Some(clip) = gen.record_view(&scene, &mut rng) {
            for t in &clip.objects {
                assert!(t.len() >= gen.config.min_visible);
            }
        }
    }

    #[test]
    fn pairs_share_structure_but_not_pixels() {
        let gen = PairGenerator::default_generator();
        let mut rng = StdRng::seed_from_u64(4);
        let pair = gen.sample_pair(&mut rng);
        assert_eq!(pair.anchor.num_objects(), pair.positive.num_objects());
        assert_eq!(pair.anchor.classes(), pair.positive.classes());
        // Different cameras: the raw screen-space paths differ.
        let a0 = pair.anchor.objects[0].centers();
        let p0 = pair.positive.objects[0].centers();
        let min_len = a0.len().min(p0.len());
        let diff: f32 = a0[..min_len]
            .iter()
            .zip(&p0[..min_len])
            .map(|(x, y)| x.distance(y))
            .sum();
        assert!(diff > 1.0, "two random views should not be pixel-identical");
    }

    #[test]
    fn batch_has_requested_size_and_distinct_events() {
        let gen = PairGenerator::default_generator();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = gen.sample_batch(4, &mut rng);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn pad_with_hold_extends_span_without_motion() {
        let gen = PairGenerator::default_generator();
        let mut rng = StdRng::seed_from_u64(11);
        let scene = gen.sampler.sample_scene(&mut rng);
        let clip = loop {
            if let Some(c) = gen.record_view(&scene, &mut rng) {
                break c;
            }
        };
        let padded = pad_with_hold(&clip, 10, 20);
        assert_eq!(padded.span(), clip.span() + 30);
        for (orig, p) in clip.objects.iter().zip(&padded.objects) {
            assert_eq!(p.len(), orig.len() + 30);
            // Padding adds no displacement.
            assert!((p.displacement() - orig.displacement()).abs() < 1e-3);
            // First 10 frames hold the first pose.
            let first = orig.points()[0].bbox;
            for k in 0..10 {
                assert_eq!(p.points()[k].bbox, first);
            }
        }
    }

    #[test]
    fn sketchify_freezes_box_size_but_keeps_path() {
        let gen = PairGenerator::default_generator();
        let mut rng = StdRng::seed_from_u64(10);
        let scene = gen.sampler.sample_scene(&mut rng);
        let clip = loop {
            if let Some(c) = gen.record_view(&scene, &mut rng) {
                break c;
            }
        };
        let s = sketchify(&clip);
        assert_eq!(s.num_objects(), clip.num_objects());
        for (orig, sk) in clip.objects.iter().zip(&s.objects) {
            // Constant box size everywhere.
            let w0 = sk.points()[0].bbox.w;
            assert!(sk.points().iter().all(|p| (p.bbox.w - w0).abs() < 1e-5));
            // Identical center paths and frames.
            assert_eq!(orig.len(), sk.len());
            for (a, b) in orig.points().iter().zip(sk.points()) {
                assert_eq!(a.frame, b.frame);
                assert!((a.bbox.cx - b.bbox.cx).abs() < 1e-5);
                assert!((a.bbox.cy - b.bbox.cy).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn same_camera_ablation_yields_near_identical_views() {
        let mut gen = PairGenerator::default_generator();
        gen.config.same_camera = true;
        gen.config.stretch_prob = 0.0;
        gen.config.pad_prob = 0.0;
        gen.config.sketchify_prob = 0.0;
        gen.config.shake = crate::camera::ShakeConfig {
            sigma: 0.0,
            reversion: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let pair = gen.sample_pair(&mut rng);
        // No shake, no stretch, same camera: the two views coincide.
        assert_eq!(pair.anchor, pair.positive);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let gen = PairGenerator::default_generator();
        let a = gen.sample_pair(&mut StdRng::seed_from_u64(42));
        let b = gen.sample_pair(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.anchor, b.anchor);
        assert_eq!(a.positive, b.positive);
    }
}
