#!/usr/bin/env bash
# End-to-end CLI smoke for live ingest + standing queries: sharded
# ingest of a base video, serve it with the live poller and a durable
# registry, register a standing query over the wire, then `append` a
# streamed continuation and require the standing query to fire exactly
# on the new epoch — matches arrive once (watch), a second poll drains
# nothing, and after a server restart the registration is restored
# from the registry file without re-delivering old matches.
#
#   scripts/smoke_live.sh                       # uses target/release
#   SKETCHQL_CLI=target/debug/sketchql-cli scripts/smoke_live.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${SKETCHQL_CLI:-target/release/sketchql-cli}"
ADDR="${SKETCHQL_SMOKE_ADDR:-127.0.0.1:17884}"
if [ ! -x "$CLI" ]; then
    echo "missing $CLI (run cargo build --release first)" >&2
    exit 2
fi

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

start_serve() {
    local log="$1"
    "$CLI" serve --model "$work/model.json" --videos "traffic=$work/live.json" \
        --store-dir "$work/stores" --addr "$ADDR" --workers 2 --oracle-tracks \
        --registry "$work/registry.json" --live-poll-ms 200 \
        >"$log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 50); do
        grep -q "serving on" "$log" 2>/dev/null && return 0
        kill -0 "$serve_pid" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "serve did not come up" >&2
    cat "$log" >&2
    return 1
}

stop_serve() {
    "$CLI" client --addr "$ADDR" --action shutdown >/dev/null
    for _ in $(seq 1 50); do
        kill -0 "$serve_pid" 2>/dev/null || { serve_pid=""; return 0; }
        sleep 0.1
    done
    echo "serve did not exit after wire shutdown" >&2
    return 1
}

echo "== live smoke: fixtures (base video + streamed continuation)"
"$CLI" generate --out "$work/base.json" --events 1 --distractors 2 --seed 3 >/dev/null
"$CLI" generate --out "$work/grown.json" --extend "$work/base.json" \
    --events 1 --distractors 2 --seed 9 >/dev/null
"$CLI" train --out "$work/model.json" --steps 20 >/dev/null
# The serve process reads the dataset's video from one path; start it
# at the base and grow the file in place right before `append`.
cp "$work/base.json" "$work/live.json"

echo "== live smoke: sharded ingest of the base (epoch 0)"
"$CLI" ingest --video "$work/base.json" --model "$work/model.json" \
    --dataset traffic --store-dir "$work/stores" --oracle-tracks \
    --shard-frames 64 --threads 2 --verify >/dev/null

echo "== live smoke: serve with live poller + durable registry"
start_serve "$work/serve1.log"
grep -q "live ingest poller" "$work/serve1.log" \
    || { echo "serve did not start the live poller" >&2; cat "$work/serve1.log" >&2; exit 1; }

echo "== live smoke: register a standing query over the wire"
"$CLI" register --addr "$ADDR" --dataset traffic --event left_turn \
    | tee "$work/register.out"
reg_id="$(awk '/^registered standing query/ { print $4 }' "$work/register.out")"
[ -n "$reg_id" ] || { echo "register printed no id" >&2; exit 1; }
[ -f "$work/registry.json" ] || { echo "registry file was not written" >&2; exit 1; }

# Before any append the queue is empty: one poll, no match lines.
"$CLI" watch --addr "$ADDR" --registration-id "$reg_id" --iterations 1 \
    > "$work/watch0.out"
if grep -Eq '^epoch +[0-9]+ +frames' "$work/watch0.out"; then
    echo "standing query fired before anything was appended" >&2
    cat "$work/watch0.out" >&2
    exit 1
fi

echo "== live smoke: append the continuation (epoch 1) under the live server"
cp "$work/grown.json" "$work/live.json"
"$CLI" append --video "$work/grown.json" --model "$work/model.json" \
    --dataset traffic --store-dir "$work/stores" --oracle-tracks \
    --threads 2 --verify | tee "$work/append.out"
grep -q "as epoch 1:" "$work/append.out" \
    || { echo "append did not commit epoch 1" >&2; exit 1; }

echo "== live smoke: the standing query fires exactly on the new epoch"
: > "$work/watch1.out"
for _ in $(seq 1 60); do
    "$CLI" watch --addr "$ADDR" --registration-id "$reg_id" --iterations 1 \
        >> "$work/watch1.out"
    grep -Eq '^epoch +[0-9]+ +frames' "$work/watch1.out" && break
    sleep 0.2
done
grep -Eq '^epoch +1 +frames' "$work/watch1.out" \
    || { echo "no epoch-1 match arrived" >&2; cat "$work/watch1.out" "$work/serve1.log" >&2; exit 1; }
if grep -Eq '^epoch +(0|[2-9][0-9]*) +frames' "$work/watch1.out"; then
    echo "matches attributed to an epoch other than the appended one" >&2
    cat "$work/watch1.out" >&2
    exit 1
fi
grep -q "live: traffic advanced to epoch 1" "$work/serve1.log" \
    || { echo "serve log missing the live reload line" >&2; cat "$work/serve1.log" >&2; exit 1; }

# Exactly-once: the queue drained above, so another poll is silent.
"$CLI" watch --addr "$ADDR" --registration-id "$reg_id" --iterations 1 \
    > "$work/watch2.out"
if grep -Eq '^epoch +[0-9]+ +frames' "$work/watch2.out"; then
    echo "matches were delivered twice" >&2
    cat "$work/watch2.out" >&2
    exit 1
fi

echo "== live smoke: restart — the registry restores the registration"
stop_serve
start_serve "$work/serve2.log"
"$CLI" watch --addr "$ADDR" --registration-id "$reg_id" --iterations 1 \
    > "$work/watch3.out" \
    || { echo "restored server does not know registration $reg_id" >&2; cat "$work/serve2.log" >&2; exit 1; }
if grep -Eq '^epoch +[0-9]+ +frames' "$work/watch3.out"; then
    echo "restart re-delivered already-seen matches" >&2
    cat "$work/watch3.out" >&2
    exit 1
fi
stop_serve

echo "ok: live smoke passed"
