//! Engine-level integration tests: admission control, deadlines,
//! graceful shutdown, and concurrent-vs-sequential byte identity.

mod common;

use std::sync::Arc;
use std::time::Duration;

use sketchql_datasets::{query_clip, EventKind};
use sketchql_server::{Engine, EngineConfig, EngineError, QuerySpec};

use common::{tiny_model, two_datasets};

/// Every (dataset, event) pair the identity tests query.
const EVENTS: &[EventKind] = &[
    EventKind::LeftTurn,
    EventKind::RightTurn,
    EventKind::UTurn,
    EventKind::StopAndGo,
];

fn spec(dataset: &str, event: EventKind) -> QuerySpec {
    QuerySpec::new(dataset, query_clip(event))
}

/// The acceptance property: eight client threads hammering an 8-worker
/// engine (with shared-scan fusion active) get byte-identical answers to
/// a 1-worker engine executing the same queries one at a time.
#[test]
fn eight_worker_engine_matches_single_worker_byte_for_byte() {
    let model = tiny_model();
    let serial = Engine::start(
        model.clone(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let mut expected = Vec::new();
    for dataset in ["alpha", "beta"] {
        for &event in EVENTS {
            let result = serial.execute(spec(dataset, event)).unwrap();
            assert_eq!(result.batch_size, 1, "1-worker engine must not fuse");
            expected.push(((dataset, event), result.moments));
        }
    }
    serial.shutdown();

    let concurrent = Arc::new(Engine::start(
        model,
        two_datasets(),
        EngineConfig {
            workers: 8,
            ..Default::default()
        },
    ));
    let per_thread: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let engine = Arc::clone(&concurrent);
                let expected = &expected;
                scope.spawn(move || {
                    // Each thread walks the query list at a different
                    // rotation so different queries overlap in time.
                    (0..expected.len())
                        .map(|i| {
                            let (dataset, event) = expected[(i + t) % expected.len()].0;
                            (
                                (dataset, event),
                                engine.execute(spec(dataset, event)).unwrap().moments,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for results in per_thread {
        for (key, moments) in results {
            let (_, want) = expected.iter().find(|(k, _)| *k == key).unwrap();
            assert_eq!(
                &moments, want,
                "concurrent result for {key:?} diverged from the serial engine"
            );
        }
    }
    concurrent.shutdown();
}

/// A zero-depth queue rejects every submission with `Overloaded` —
/// admission is checked before anything is enqueued.
#[test]
fn zero_depth_queue_rejects_everything() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            queue_depth: 0,
            ..Default::default()
        },
    );
    let err = engine
        .submit(spec("alpha", EventKind::LeftTurn))
        .unwrap_err();
    assert_eq!(err, EngineError::Overloaded { queue_depth: 0 });
    assert_eq!(engine.stats().rejected_overload, 1);
}

/// Overload sheds load instead of queueing without bound: burst-submitting
/// far more queries than the queue holds yields explicit `Overloaded`
/// rejections, while every admitted query still completes.
#[test]
fn burst_past_queue_depth_is_shed_not_buffered() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            queue_depth: 2,
            ..Default::default()
        },
    );
    let mut admitted = Vec::new();
    let mut overloaded = 0;
    for _ in 0..40 {
        match engine.submit(spec("alpha", EventKind::LeftTurn)) {
            Ok(handle) => admitted.push(handle),
            Err(EngineError::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 2);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(
        overloaded > 0,
        "a 40-query burst into a depth-2 queue must hit the admission bound"
    );
    for handle in admitted {
        handle.wait().expect("admitted queries must complete");
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected_overload, overloaded);
    assert_eq!(stats.completed + stats.rejected_overload, 40);
    engine.shutdown();
}

/// An already-expired deadline is answered `DeadlineExceeded` from the
/// queue without running the search.
#[test]
fn expired_deadline_is_reported_without_running() {
    let engine = Engine::start(tiny_model(), two_datasets(), EngineConfig::default());
    let mut q = spec("alpha", EventKind::LeftTurn);
    q.deadline = Some(Duration::ZERO);
    assert_eq!(engine.execute(q), Err(EngineError::DeadlineExceeded));
    let stats = engine.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 0);
}

/// `EngineConfig::default_deadline` applies to queries without their own.
#[test]
fn default_deadline_applies_when_query_has_none() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            default_deadline: Some(Duration::ZERO),
            ..Default::default()
        },
    );
    assert_eq!(
        engine.execute(spec("alpha", EventKind::LeftTurn)),
        Err(EngineError::DeadlineExceeded)
    );
}

/// Cancelling through the handle answers `Cancelled`.
#[test]
fn handle_cancel_is_reported() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 1,
            ..Default::default()
        },
    );
    // Occupy the single worker so the second query sits in the queue
    // long enough for the cancel to land before it finishes.
    let busy = engine.submit(spec("alpha", EventKind::LeftTurn)).unwrap();
    let victim = engine.submit(spec("alpha", EventKind::RightTurn)).unwrap();
    victim.cancel();
    assert_eq!(victim.wait(), Err(EngineError::Cancelled));
    busy.wait().unwrap();
}

/// Unknown datasets are rejected at submit, before consuming a queue slot.
#[test]
fn unknown_dataset_rejected_at_submit() {
    let engine = Engine::start(tiny_model(), two_datasets(), EngineConfig::default());
    assert_eq!(
        engine.execute(spec("nope", EventKind::LeftTurn)),
        Err(EngineError::UnknownDataset("nope".into()))
    );
    assert_eq!(engine.stats().accepted, 0);
}

/// A per-query `top_k` returns exactly the prefix of the full ranking
/// (NMS keeps a greedy prefix, so truncation equals a smaller-k search).
#[test]
fn per_query_top_k_is_a_prefix_of_the_full_ranking() {
    let engine = Engine::start(tiny_model(), two_datasets(), EngineConfig::default());
    let full = engine.execute(spec("alpha", EventKind::LeftTurn)).unwrap();
    assert!(
        full.moments.len() >= 3,
        "fixture should retrieve >= 3 moments"
    );
    let mut q = spec("alpha", EventKind::LeftTurn);
    q.top_k = Some(3);
    let truncated = engine.execute(q).unwrap();
    assert_eq!(truncated.moments, full.moments[..3]);
}

/// Shutdown drains: every query admitted before shutdown is answered,
/// and submissions afterwards are refused.
#[test]
fn shutdown_drains_admitted_queries() {
    let engine = Engine::start(
        tiny_model(),
        two_datasets(),
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let dataset = if i % 2 == 0 { "alpha" } else { "beta" };
            engine
                .submit(spec(dataset, EVENTS[i % EVENTS.len()]))
                .unwrap()
        })
        .collect();
    engine.shutdown();
    for handle in handles {
        handle.wait().expect("admitted queries must be drained");
    }
    assert_eq!(
        engine
            .submit(spec("alpha", EventKind::LeftTurn))
            .unwrap_err(),
        EngineError::ShuttingDown
    );
    assert_eq!(engine.stats().completed, 6);
}
