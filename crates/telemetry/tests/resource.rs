//! Resource attribution (counting allocator + CPU scopes) and the
//! cooperative sampling profiler.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sketchql_telemetry as tel;
use sketchql_telemetry::names;

/// Spins the CPU for roughly `wall` without sleeping.
fn busy(wall: Duration) -> u64 {
    let start = Instant::now();
    let mut acc = 0u64;
    while start.elapsed() < wall {
        for i in 0..10_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    }
    acc
}

/// A known allocation pattern inside an attribution scope lands on that
/// trace — and only allocations inside the scope count (differential
/// against a second trace with a much smaller pattern).
#[test]
fn allocations_inside_a_scope_attribute_to_the_right_trace() {
    if !tel::is_enabled() {
        return;
    }
    const BIG: usize = 1 << 20;
    const SMALL: usize = 1 << 14;

    let heavy = tel::TraceContext::new();
    heavy.set_label("resource/heavy");
    {
        let _g = heavy.enter();
        let block: Vec<u8> = vec![1; BIG];
        std::hint::black_box(&block);
    }
    // Allocations outside any scope must not attribute anywhere.
    let noise: Vec<u8> = vec![2; 4 * BIG];
    std::hint::black_box(&noise);

    let light = tel::TraceContext::new();
    light.set_label("resource/light");
    {
        let _g = light.enter();
        let block: Vec<u8> = vec![3; SMALL];
        std::hint::black_box(&block);
    }

    let heavy = heavy.finalize().expect("first finalize wins");
    let light = light.finalize().expect("first finalize wins");

    assert!(
        heavy.alloc_bytes >= BIG as u64,
        "heavy scope must see its 1 MiB block (saw {})",
        heavy.alloc_bytes
    );
    assert!(
        heavy.alloc_bytes < 3 * BIG as u64,
        "the out-of-scope 4 MiB noise must not attribute (saw {})",
        heavy.alloc_bytes
    );
    assert!(heavy.alloc_count >= 1);
    assert!(
        light.alloc_bytes >= SMALL as u64 && light.alloc_bytes < BIG as u64 / 2,
        "light scope sees only its own traffic (saw {})",
        light.alloc_bytes
    );
}

/// A helper thread that re-enters the traces its parent had entered
/// (the `TraceContext::entered` hand-off the matcher's worker pools
/// use) attributes its allocations to the same trace.
#[test]
fn helper_threads_attribute_through_the_entered_handoff() {
    if !tel::is_enabled() {
        return;
    }
    const BLOCK: usize = 1 << 20;
    let ctx = tel::TraceContext::new();
    ctx.set_label("resource/handoff");
    {
        let _g = ctx.enter();
        let inherited = tel::TraceContext::entered();
        assert_eq!(inherited.len(), 1, "parent scope is live");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _guards: Vec<_> = inherited.iter().map(|t| t.enter()).collect();
                let block: Vec<u8> = vec![7; BLOCK];
                std::hint::black_box(&block);
            });
        });
    }
    let trace = ctx.finalize().unwrap();
    assert!(
        trace.alloc_bytes >= BLOCK as u64,
        "helper-thread traffic must land on the parent trace (saw {})",
        trace.alloc_bytes
    );
}

/// CPU burned inside a scope shows up as `cpu_nanos` on the trace, and
/// flows into the `sketchql.resource.*` series at finalization.
#[test]
fn cpu_inside_a_scope_attributes_to_the_trace() {
    if !tel::is_enabled() {
        return;
    }
    let before = tel::counter(names::RESOURCE_CPU_NANOS).get();
    let ctx = tel::TraceContext::new();
    ctx.set_label("resource/spin");
    {
        let _g = ctx.enter();
        busy(Duration::from_millis(30));
    }
    let trace = ctx.finalize().unwrap();
    // A 30 ms spin must register well over 5 ms of CPU even on a loaded
    // machine (and the wall-clock fallback would report ~30 ms).
    assert!(
        trace.cpu_nanos >= 5_000_000,
        "spin must attribute CPU (saw {} ns)",
        trace.cpu_nanos
    );
    assert!(
        tel::counter(names::RESOURCE_CPU_NANOS).get() >= before + trace.cpu_nanos,
        "finalization feeds the resource counter"
    );
}

/// The sampling profiler folds a live span stack into
/// flamegraph-compatible lines naming the stage.
#[test]
fn profiler_folds_live_span_stacks() {
    if !tel::is_enabled() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let worker_stop = Arc::clone(&stop);
    let worker = std::thread::Builder::new()
        .name("prof-worker".to_string())
        .spawn(move || {
            let _outer = tel::span(names::MATCHER_SEARCH);
            let _inner = tel::span(names::MATCHER_SCAN);
            while !worker_stop.load(Ordering::Relaxed) {
                busy(Duration::from_millis(5));
            }
        })
        .unwrap();

    let report = tel::collect_profile(Duration::from_millis(400), 97);
    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap();

    assert!(report.samples > 0, "sampler must have observed threads");
    let folded = report.folded();
    let scan_line = folded
        .lines()
        .find(|l| l.contains(names::MATCHER_SCAN))
        .unwrap_or_else(|| panic!("folded output names the scan stage:\n{folded}"));
    assert!(
        scan_line.starts_with("prof-worker;"),
        "stack is rooted at the thread name: {scan_line}"
    );
    assert!(
        scan_line.contains(&format!(
            "{};{}",
            names::MATCHER_SEARCH,
            names::MATCHER_SCAN
        )),
        "nesting order is outer;inner: {scan_line}"
    );
    let entry = &report.entries[scan_line.rsplit_once(' ').unwrap().0];
    assert!(
        entry.cpu_nanos > 0 || tel::tid_cpu_nanos(tel::current_tid()).is_none(),
        "a spinning thread accrues CPU weight where per-tid CPU exists"
    );
}
