//! The Matcher: sliding-window similarity search over a video's tracked
//! trajectories (§2.2 of the demo paper).
//!
//! Given a visual query C_Q, the Matcher enumerates candidate video clips
//! C_V — temporal windows at several scales of the query's duration,
//! crossed with class-compatible combinations of tracked objects — scores
//! each candidate with a [`Similarity`], suppresses temporally overlapping
//! hits (NMS), and returns the top-k moments sorted by score.
//!
//! For embedding-based similarities the scan runs in three phases: (1)
//! enumerate all candidates, interning each distinct segment once in an
//! [`EmbedCache`]; (2) embed the unique segments in batched encoder
//! forwards across worker threads; (3) score every candidate from its
//! cached embedding. This returns byte-identical moments to the direct
//! per-candidate path while embedding each distinct segment exactly once.

use serde::{Deserialize, Serialize};
use sketchql_telemetry::{self as telemetry, names};
use sketchql_trajectory::{Clip, TrackId, TrajPoint, Trajectory};
use std::collections::HashSet;
use std::fmt;

use crate::cancel::{CancelReason, CancelToken};
use crate::embed_cache::{try_embed_clips_parallel, EmbedCache};
use crate::index::VideoIndex;
use crate::similarity::{PreparedQuery, Similarity, SimilarityError};

/// Bucket bounds for the window-score histogram (scores live in `[0, 1]`).
const SCORE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Matcher search parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Window lengths to try, as multiples of the query's duration.
    pub window_scales: Vec<f32>,
    /// Window stride as a fraction of the window length.
    pub stride_frac: f32,
    /// Number of moments to return.
    pub top_k: usize,
    /// Temporal-IoU threshold for non-maximum suppression.
    pub nms_tiou: f32,
    /// Smallest window considered (frames).
    pub min_window: u32,
    /// A track must cover at least this fraction of a window to be a
    /// candidate participant.
    pub min_overlap_frac: f32,
    /// Cap on object combinations scored per window (guards the
    /// multi-object cartesian product).
    pub max_combos_per_window: usize,
    /// Worker threads for window scoring (1 = sequential). Windows are
    /// independent, so search parallelizes embarrassingly well.
    pub threads: usize,
    /// Trim each returned moment to the active-motion extent of its bound
    /// tracks (drops parked lead-in/lead-out frames a sliding window
    /// inevitably includes).
    pub refine_boundaries: bool,
    /// Memoize candidate-segment embeddings for the duration of one
    /// search and batch them through the encoder (embedding-based
    /// similarities only). Results are identical either way; disabling
    /// falls back to one encoder forward per candidate.
    pub embed_cache: bool,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            window_scales: vec![0.75, 1.0, 1.5],
            stride_frac: 0.25,
            top_k: 10,
            nms_tiou: 0.45,
            min_window: 16,
            min_overlap_frac: 0.5,
            max_combos_per_window: 64,
            threads: 1,
            refine_boundaries: true,
            embed_cache: true,
        }
    }
}

/// One retrieved video moment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievedMoment {
    /// First frame of the moment.
    pub start: u32,
    /// Last frame (inclusive).
    pub end: u32,
    /// Similarity score in `[0, 1]`.
    pub score: f32,
    /// The tracks (by id) bound to the query's object slots.
    pub track_ids: Vec<TrackId>,
}

impl RetrievedMoment {
    /// Temporal IoU with another moment.
    pub fn temporal_iou(&self, other: &RetrievedMoment) -> f32 {
        let inter_start = self.start.max(other.start);
        let inter_end = self.end.min(other.end);
        if inter_end < inter_start {
            return 0.0;
        }
        let inter = (inter_end - inter_start + 1) as f32;
        let union =
            (self.end - self.start + 1) as f32 + (other.end - other.start + 1) as f32 - inter;
        inter / union
    }
}

/// Errors from a cancellable or batched search.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchError {
    /// The similarity rejected the query itself (see [`SimilarityError`]).
    Similarity(SimilarityError),
    /// The search stopped early: its [`CancelToken`] tripped.
    Cancelled(CancelReason),
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::Similarity(e) => write!(f, "{e}"),
            MatchError::Cancelled(r) => write!(f, "search {r}"),
        }
    }
}

impl std::error::Error for MatchError {}

impl From<SimilarityError> for MatchError {
    fn from(e: SimilarityError) -> Self {
        MatchError::Similarity(e)
    }
}

impl From<CancelReason> for MatchError {
    fn from(r: CancelReason) -> Self {
        MatchError::Cancelled(r)
    }
}

/// The Matcher: a similarity function plus search parameters.
pub struct Matcher<S: Similarity> {
    /// The similarity used to score candidates.
    pub sim: S,
    /// Search parameters.
    pub config: MatcherConfig,
}

impl<S: Similarity> Matcher<S> {
    /// Creates a matcher with default search parameters.
    pub fn new(sim: S) -> Self {
        Matcher {
            sim,
            config: MatcherConfig::default(),
        }
    }

    /// Creates a matcher with explicit parameters.
    pub fn with_config(sim: S, config: MatcherConfig) -> Self {
        Matcher { sim, config }
    }

    /// Runs the sliding-window search of `query` over `index`.
    ///
    /// Degenerate inputs return an empty result set rather than panic: an
    /// empty index, an empty query, a query shorter than
    /// [`MatcherConfig::min_window`], or window scales that all exceed the
    /// video's length. A query the similarity itself cannot score (e.g.
    /// more objects than the learned encoder supports) is an error — every
    /// candidate would silently score 0.0 otherwise.
    pub fn search(
        &self,
        index: &VideoIndex,
        query: &Clip,
    ) -> Result<Vec<RetrievedMoment>, SimilarityError> {
        match self.search_with_cancel(index, query, &CancelToken::none()) {
            Ok(r) => Ok(r),
            Err(MatchError::Similarity(e)) => Err(e),
            Err(MatchError::Cancelled(_)) => unreachable!("null token never cancels"),
        }
    }

    /// [`search`](Self::search) with cooperative cancellation: `cancel` is
    /// polled between windows, between encoder batches, and between scan
    /// phases, so a cancelled or deadline-expired search stops consuming
    /// CPU promptly (within one window / one encoder batch) and returns
    /// [`MatchError::Cancelled`] instead of results.
    pub fn search_with_cancel(
        &self,
        index: &VideoIndex,
        query: &Clip,
        cancel: &CancelToken,
    ) -> Result<Vec<RetrievedMoment>, MatchError> {
        let _search_span = telemetry::span(names::MATCHER_SEARCH);
        let q_span = query.span();
        if q_span == 0
            || q_span < self.config.min_window
            || query.num_objects() == 0
            || index.frames == 0
        {
            return Ok(Vec::new());
        }
        let prepared = {
            let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
            self.sim.prepare(query)?
        };
        let classes = query.classes();

        let scan_span = telemetry::span(names::MATCHER_SCAN);
        let windows = self.enumerate_windows(q_span, index.frames);
        telemetry::counter(names::WINDOWS_ENUMERATED).add(windows.len() as u64);

        let use_cache = self.config.embed_cache && self.sim.uses_embeddings();
        let scored: Vec<RetrievedMoment> = if use_cache {
            let mut cache = EmbedCache::new();
            let per_window =
                self.enumerate_candidates(index, &classes, &windows, &mut cache, cancel)?;
            telemetry::counter(names::EMBED_CACHE_HITS).add(cache.hits());
            telemetry::counter(names::EMBED_CACHE_MISSES).add(cache.misses());
            let embed_span = telemetry::span(names::MATCHER_EMBED);
            let embeddings =
                try_embed_clips_parallel(&self.sim, cache.clips(), self.config.threads, cancel)?;
            drop(embed_span);
            self.score_candidates(&prepared, per_window, &embeddings, cancel)?
        } else {
            self.scan_direct(index, &classes, &prepared, &windows, cancel)?
        };
        telemetry::counter(names::WINDOWS_PRUNED).add((windows.len() - scored.len()) as u64);
        if telemetry::is_enabled() {
            let hist = telemetry::histogram(names::WINDOW_SCORE, SCORE_BOUNDS);
            for m in &scored {
                hist.observe(m.score as f64);
            }
        }
        drop(scan_span);
        Ok(self.rank(index, scored))
    }

    /// Executes several queries against one index in a single fused scan.
    ///
    /// Candidate-segment embeddings depend only on the index and the
    /// model — not on the query — so concurrent queries over the same
    /// video share one [`EmbedCache`] and one batched encoder pass over
    /// the union of their candidate segments. Scoring, ranking, NMS, and
    /// refinement still run per query, so each query's result vector is
    /// byte-identical to what a solo [`search`](Self::search) returns.
    ///
    /// This is the engine's multi-query amortization path ("shared scan"):
    /// with K concurrent look-alike queries the encoder work is paid
    /// roughly once instead of K times. Queries whose spans differ still
    /// share whatever windows coincide.
    ///
    /// One `cancel` token covers the whole batch (the fused encoder pass
    /// is indivisible); when it trips, *every* query in the batch reports
    /// [`MatchError::Cancelled`]. Per-query failures (e.g. an
    /// unembeddable query) are reported per slot without failing the
    /// batch. Similarities that do not use embeddings fall back to
    /// sequential solo searches.
    pub fn search_batch(
        &self,
        index: &VideoIndex,
        queries: &[&Clip],
        cancel: &CancelToken,
    ) -> Vec<Result<Vec<RetrievedMoment>, MatchError>> {
        if !(self.config.embed_cache && self.sim.uses_embeddings()) || queries.len() == 1 {
            return queries
                .iter()
                .map(|q| self.search_with_cancel(index, q, cancel))
                .collect();
        }
        match self.search_batch_fused(index, queries, cancel) {
            Ok(results) => results,
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// The fused path behind [`search_batch`](Self::search_batch): phase 1
    /// per query into one shared cache, one phase-2 encoder pass, then
    /// phases 3-4 per query. An `Err` here is batch-wide (cancellation).
    fn search_batch_fused(
        &self,
        index: &VideoIndex,
        queries: &[&Clip],
        cancel: &CancelToken,
    ) -> Result<Vec<Result<Vec<RetrievedMoment>, MatchError>>, MatchError> {
        let _search_span = telemetry::span(names::MATCHER_SEARCH);

        // Per-query setup mirrors `search_with_cancel` exactly; queries
        // that fail to prepare (or are degenerate) are settled here and
        // excluded from the fused scan.
        enum Slot {
            Done(Result<Vec<RetrievedMoment>, MatchError>),
            Live {
                prepared: PreparedQuery,
                windows: Vec<(u32, u32, u32)>,
            },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut cache = EmbedCache::new();
        let mut live_candidates: Vec<Vec<WindowCandidates>> = Vec::new();
        {
            let scan_span = telemetry::span(names::MATCHER_SCAN);
            for query in queries {
                cancel.check().map_err(MatchError::from)?;
                let q_span = query.span();
                if q_span == 0
                    || q_span < self.config.min_window
                    || query.num_objects() == 0
                    || index.frames == 0
                {
                    slots.push(Slot::Done(Ok(Vec::new())));
                    continue;
                }
                let prepared = {
                    let _prepare_span = telemetry::span(names::MATCHER_PREPARE);
                    match self.sim.prepare(query) {
                        Ok(p) => p,
                        Err(e) => {
                            slots.push(Slot::Done(Err(e.into())));
                            continue;
                        }
                    }
                };
                let classes = query.classes();
                let windows = self.enumerate_windows(q_span, index.frames);
                telemetry::counter(names::WINDOWS_ENUMERATED).add(windows.len() as u64);
                live_candidates.push(
                    self.enumerate_candidates(index, &classes, &windows, &mut cache, cancel)?,
                );
                slots.push(Slot::Live { prepared, windows });
            }
            telemetry::counter(names::EMBED_CACHE_HITS).add(cache.hits());
            telemetry::counter(names::EMBED_CACHE_MISSES).add(cache.misses());

            // Phase 2 once for the whole batch: the shared cache holds the
            // union of every live query's distinct candidate segments.
            let embed_span = telemetry::span(names::MATCHER_EMBED);
            let embeddings =
                try_embed_clips_parallel(&self.sim, cache.clips(), self.config.threads, cancel)?;
            drop(embed_span);

            // Phases 3-4 per query, identical to the solo path.
            let mut live = live_candidates.into_iter();
            let mut results: Vec<Result<Vec<RetrievedMoment>, MatchError>> =
                Vec::with_capacity(queries.len());
            for slot in slots {
                match slot {
                    Slot::Done(r) => results.push(r),
                    Slot::Live { prepared, windows } => {
                        let per_window = live.next().expect("one candidate set per live slot");
                        let scored =
                            self.score_candidates(&prepared, per_window, &embeddings, cancel)?;
                        telemetry::counter(names::WINDOWS_PRUNED)
                            .add((windows.len() - scored.len()) as u64);
                        if telemetry::is_enabled() {
                            let hist = telemetry::histogram(names::WINDOW_SCORE, SCORE_BOUNDS);
                            for m in &scored {
                                hist.observe(m.score as f64);
                            }
                        }
                        results.push(Ok(self.rank(index, scored)));
                    }
                }
            }
            drop(scan_span);
            Ok(results)
        }
    }

    /// Final ranking: sort by score (ties broken deterministically so
    /// parallel and sequential runs agree), NMS, truncate to top-k, and
    /// optionally refine boundaries.
    pub(crate) fn rank(
        &self,
        index: &VideoIndex,
        mut scored: Vec<RetrievedMoment>,
    ) -> Vec<RetrievedMoment> {
        let _rank_span = telemetry::span(names::MATCHER_RANK);
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.start.cmp(&b.start))
                .then(a.track_ids.cmp(&b.track_ids))
        });
        let mut kept: Vec<RetrievedMoment> = Vec::new();
        for m in scored {
            if kept.len() >= self.config.top_k {
                break;
            }
            let overlaps = kept
                .iter()
                .any(|k| k.temporal_iou(&m) >= self.config.nms_tiou && k.track_ids == m.track_ids);
            if !overlaps {
                kept.push(m);
            }
        }
        telemetry::counter(names::TOPK_HEAP_OPS).add(kept.len() as u64);
        if self.config.refine_boundaries {
            for m in &mut kept {
                refine_boundaries(index, m);
            }
        }
        kept
    }

    /// The direct (no embedding cache) scan: score every window's best
    /// candidate, sequentially or across worker threads. Polls `cancel`
    /// between windows.
    fn scan_direct(
        &self,
        index: &VideoIndex,
        classes: &[sketchql_trajectory::ObjectClass],
        prepared: &PreparedQuery,
        windows: &[(u32, u32, u32)],
        cancel: &CancelToken,
    ) -> Result<Vec<RetrievedMoment>, MatchError> {
        let threads = self.config.threads.max(1);
        if threads == 1 || windows.len() < 2 * threads {
            let mut out = Vec::new();
            for &(s, e, o) in windows {
                cancel.check().map_err(MatchError::from)?;
                out.extend(self.best_in_window(index, classes, prepared, s, e, o));
            }
            return Ok(out);
        }
        let results = std::sync::Mutex::new(Vec::with_capacity(windows.len()));
        let chunk = windows.len().div_ceil(threads);
        // Hand the calling thread's live traces to the workers so their
        // CPU and allocations attribute to the query being scanned.
        let entered = telemetry::TraceContext::entered();
        std::thread::scope(|scope| {
            for piece in windows.chunks(chunk) {
                let results = &results;
                let entered = &entered;
                scope.spawn(move || {
                    let _attribution: Vec<_> = entered.iter().map(|t| t.enter()).collect();
                    let mut local: Vec<RetrievedMoment> = Vec::new();
                    for &(s, e, o) in piece {
                        // Workers drop out at the first tripped poll; the
                        // partial results are discarded below.
                        if cancel.check().is_err() {
                            return;
                        }
                        local.extend(self.best_in_window(index, classes, prepared, s, e, o));
                    }
                    results.lock().unwrap().extend(local);
                });
            }
        });
        cancel.check().map_err(MatchError::from)?;
        Ok(results.into_inner().unwrap())
    }

    /// Enumerates every `(start, end, min_overlap)` window across the
    /// configured scales, first occurrence order, duplicates dropped.
    /// Scales whose window would not fit in the video are skipped.
    ///
    /// Deduplication matters: two scales whose windows clamp to the same
    /// length (e.g. both under [`MatcherConfig::min_window`]) used to emit
    /// the whole window list twice, scoring — and with the learned
    /// similarity, embedding — every candidate in it twice.
    pub(crate) fn enumerate_windows(&self, q_span: u32, frames: u32) -> Vec<(u32, u32, u32)> {
        let mut windows: Vec<(u32, u32, u32)> = Vec::new();
        let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
        for &scale in &self.config.window_scales {
            let window = ((q_span as f32 * scale) as u32).max(self.config.min_window);
            if window > frames {
                continue;
            }
            let stride = ((window as f32 * self.config.stride_frac) as u32).max(1);
            let min_overlap = ((window as f32 * self.config.min_overlap_frac) as u32).max(1);
            let mut start = 0u32;
            loop {
                let end = (start + window - 1).min(frames.saturating_sub(1));
                if seen.insert((start, end, min_overlap)) {
                    windows.push((start, end, min_overlap));
                }
                if end + 1 >= frames {
                    break;
                }
                start += stride;
            }
        }
        windows
    }

    /// Scores all candidate object combinations in one window; returns the
    /// best moment, if any candidate exists.
    fn best_in_window(
        &self,
        index: &VideoIndex,
        classes: &[sketchql_trajectory::ObjectClass],
        prepared: &PreparedQuery,
        start: u32,
        end: u32,
        min_overlap: u32,
    ) -> Option<RetrievedMoment> {
        // Candidate tracks per query slot.
        let per_slot: Vec<Vec<&Trajectory>> = classes
            .iter()
            .map(|c| index.tracks_in_window(*c, start, end, min_overlap))
            .collect();
        if per_slot.iter().any(Vec::is_empty) {
            return None;
        }

        let mut best: Option<RetrievedMoment> = None;
        for_each_distinct_combo(
            &per_slot,
            self.config.max_combos_per_window,
            |combo, ids| {
                let candidate = window_clip(index, combo, &per_slot, start, end);
                if candidate.is_empty() {
                    return;
                }
                // A non-finite score (a degenerate candidate under a
                // classical distance) is treated as "no match" so NaN
                // never reaches the ranking stage.
                let score = self.sim.score(prepared, &candidate);
                let score = if score.is_finite() { score } else { 0.0 };
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(RetrievedMoment {
                        start,
                        end,
                        score,
                        track_ids: ids.to_vec(),
                    });
                }
            },
        );
        best
    }

    /// Phase 1 of the cached scan: enumerate every window's candidates,
    /// interning each distinct segment once in `cache`. A window's
    /// candidate list holds the bound track ids (slot order) and the
    /// segment's embedding slot, in combination order, for every distinct
    /// non-empty candidate. The cache may be shared across queries
    /// ([`search_batch`](Self::search_batch)): interning is keyed purely
    /// on `(track_ids, start, end)`, which is query-independent.
    fn enumerate_candidates(
        &self,
        index: &VideoIndex,
        classes: &[sketchql_trajectory::ObjectClass],
        windows: &[(u32, u32, u32)],
        cache: &mut EmbedCache,
        cancel: &CancelToken,
    ) -> Result<Vec<WindowCandidates>, MatchError> {
        let mut per_window: Vec<WindowCandidates> = Vec::new();
        for &(start, end, min_overlap) in windows {
            cancel.check().map_err(MatchError::from)?;
            let per_slot: Vec<Vec<&Trajectory>> = classes
                .iter()
                .map(|c| index.tracks_in_window(*c, start, end, min_overlap))
                .collect();
            if per_slot.iter().any(Vec::is_empty) {
                continue;
            }
            let mut candidates: Vec<(Vec<TrackId>, u32)> = Vec::new();
            for_each_distinct_combo(
                &per_slot,
                self.config.max_combos_per_window,
                |combo, ids| {
                    let slot = cache.intern(ids, start, end, || {
                        window_clip(index, combo, &per_slot, start, end)
                    });
                    if let Some(slot) = slot {
                        candidates.push((ids.to_vec(), slot));
                    }
                },
            );
            per_window.push((start, end, candidates));
        }
        Ok(per_window)
    }

    /// Phase 3 of the cached scan: score every candidate from its cached
    /// embedding, preserving the per-window combination order (same
    /// strict-greater best and finite-score rules as the direct path).
    /// Byte-identical to running [`best_in_window`](Self::best_in_window)
    /// per window.
    fn score_candidates(
        &self,
        prepared: &PreparedQuery,
        per_window: Vec<WindowCandidates>,
        embeddings: &[Option<Vec<f32>>],
        cancel: &CancelToken,
    ) -> Result<Vec<RetrievedMoment>, MatchError> {
        let mut scored: Vec<RetrievedMoment> = Vec::new();
        for (start, end, candidates) in per_window {
            cancel.check().map_err(MatchError::from)?;
            let mut best: Option<RetrievedMoment> = None;
            for (ids, slot) in candidates {
                let embedding = embeddings[slot as usize].as_deref();
                let score = self.sim.score_embedding(prepared, embedding);
                let score = if score.is_finite() { score } else { 0.0 };
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(RetrievedMoment {
                        start,
                        end,
                        score,
                        track_ids: ids,
                    });
                }
            }
            scored.extend(best);
        }
        Ok(scored)
    }
}

/// One window's candidates for the cached scan: `(start, end)` plus each
/// distinct candidate's bound track ids (slot order) and embedding slot.
type WindowCandidates = (u32, u32, Vec<(Vec<TrackId>, u32)>);

/// Visits every combination of one track per slot where all chosen tracks
/// are distinct, in mixed-radix order, stopping after `max_combos` visits.
/// The callback receives the per-slot indices and the chosen track ids in
/// slot order.
fn for_each_distinct_combo(
    per_slot: &[Vec<&Trajectory>],
    max_combos: usize,
    mut visit: impl FnMut(&[usize], &[TrackId]),
) {
    let mut combo = vec![0usize; per_slot.len()];
    let mut ids: Vec<TrackId> = vec![0; per_slot.len()];
    let mut tried = 0usize;
    'combos: loop {
        for (slot, &i) in combo.iter().enumerate() {
            ids[slot] = per_slot[slot][i].id;
        }
        let distinct = {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        };
        if distinct {
            tried += 1;
            visit(&combo, &ids);
            if tried >= max_combos {
                break 'combos;
            }
        }
        // Advance the mixed-radix counter.
        let mut slot = 0;
        loop {
            combo[slot] += 1;
            if combo[slot] < per_slot[slot].len() {
                break;
            }
            combo[slot] = 0;
            slot += 1;
            if slot == combo.len() {
                break 'combos;
            }
        }
    }
}

/// Trims a moment to the frames that carry its tracks' motion: the leading
/// and trailing stretches contributing less than 2% of the total path
/// length each are dropped. Windows over parked objects are left unchanged
/// (no motion to anchor on).
fn refine_boundaries(index: &VideoIndex, moment: &mut RetrievedMoment) {
    const TRIM_FRAC: f32 = 0.02;
    const MIN_LEN: u32 = 8;
    let tracks: Vec<&Trajectory> = moment
        .track_ids
        .iter()
        .filter_map(|id| index.tracks.iter().find(|t| t.id == *id))
        .collect();
    if tracks.is_empty() || moment.end <= moment.start + MIN_LEN {
        return;
    }
    // Per-frame combined center motion.
    let n = (moment.end - moment.start) as usize;
    let mut motion = vec![0.0f32; n];
    for t in &tracks {
        let mut prev = t.bbox_at(moment.start);
        for (k, m) in motion.iter_mut().enumerate() {
            let f = moment.start + k as u32 + 1;
            let cur = t.bbox_at(f);
            if let (Some(a), Some(b)) = (prev, cur) {
                *m += a.center().distance(&b.center());
            }
            prev = cur;
        }
    }
    let total: f32 = motion.iter().sum();
    if total <= 1e-3 {
        return;
    }
    let lead_budget = total * TRIM_FRAC;
    let mut acc = 0.0;
    let mut lead = 0usize;
    for &m in &motion {
        if acc + m > lead_budget {
            break;
        }
        acc += m;
        lead += 1;
    }
    let mut acc = 0.0;
    let mut trail = 0usize;
    for &m in motion.iter().rev() {
        if acc + m > lead_budget {
            break;
        }
        acc += m;
        trail += 1;
    }
    let new_start = moment.start + lead as u32;
    let new_end = moment.end.saturating_sub(trail as u32);
    if new_end > new_start && new_end - new_start + 1 >= MIN_LEN {
        moment.start = new_start;
        moment.end = new_end;
    }
}

/// Builds the candidate clip for a window: each selected track sliced to
/// `[start, end]` and rebased so the window starts at frame 0 (preserving
/// cross-object timing).
pub(crate) fn window_clip(
    index: &VideoIndex,
    combo: &[usize],
    per_slot: &[Vec<&Trajectory>],
    start: u32,
    end: u32,
) -> Clip {
    let objects = combo
        .iter()
        .enumerate()
        .map(|(slot, &i)| {
            let t = per_slot[slot][i];
            let pts = t
                .points()
                .iter()
                .filter(|p| p.frame >= start && p.frame <= end)
                .map(|p| TrajPoint::new(p.frame - start, p.bbox))
                .collect();
            Trajectory::from_points(t.id, t.class, pts)
        })
        .collect();
    Clip::new(index.frame_width, index.frame_height, objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::ClassicalSimilarity;
    use sketchql_trajectory::{BBox, DistanceKind, ObjectClass};

    /// A synthetic index: one car doing a "left turn on screen" (right then
    /// up) during frames 100..190, plus a straight-moving car elsewhere.
    fn test_index() -> VideoIndex {
        let mut turn_pts = Vec::new();
        for i in 0..45u32 {
            turn_pts.push(TrajPoint::new(
                100 + i,
                BBox::new(100.0 + i as f32 * 8.0, 400.0, 60.0, 35.0),
            ));
        }
        for i in 0..45u32 {
            turn_pts.push(TrajPoint::new(
                145 + i,
                BBox::new(460.0, 400.0 - (i + 1) as f32 * 7.0, 40.0, 45.0),
            ));
        }
        let turner = Trajectory::from_points(1, ObjectClass::Car, turn_pts);

        let straight = Trajectory::from_points(
            2,
            ObjectClass::Car,
            (300..420)
                .map(|f| TrajPoint::new(f, BBox::new((f - 300) as f32 * 7.0, 250.0, 60.0, 35.0)))
                .collect(),
        );
        let clip = Clip::new(1280.0, 720.0, vec![turner, straight]);
        VideoIndex::from_clip("test", &clip, 500, 30.0)
    }

    /// A left-turn query: right then up, ~90 ticks.
    fn left_turn_query() -> Clip {
        let mut pts = Vec::new();
        for i in 0..45u32 {
            pts.push(TrajPoint::new(
                i,
                BBox::new(100.0 + i as f32 * 6.0, 450.0, 80.0, 45.0),
            ));
        }
        for i in 0..45u32 {
            pts.push(TrajPoint::new(
                45 + i,
                BBox::new(370.0, 450.0 - (i + 1) as f32 * 6.0, 60.0, 55.0),
            ));
        }
        Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(0, ObjectClass::Car, pts)],
        )
    }

    fn matcher() -> Matcher<ClassicalSimilarity> {
        Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw))
    }

    #[test]
    fn finds_the_turning_car() {
        let idx = test_index();
        let results = matcher().search(&idx, &left_turn_query()).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        assert_eq!(
            top.track_ids,
            vec![1],
            "turner should rank first, got {top:?}"
        );
        // The moment overlaps the true event [100, 190].
        assert!(top.start < 190 && top.end > 100, "moment {top:?}");
    }

    #[test]
    fn straight_query_prefers_straight_car() {
        let idx = test_index();
        let straight_query = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Car,
                (0..90)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(100.0 + i as f32 * 7.0, 300.0, 80.0, 45.0))
                    })
                    .collect(),
            )],
        );
        let results = matcher().search(&idx, &straight_query).unwrap();
        assert!(!results.is_empty());
        assert_eq!(results[0].track_ids, vec![2]);
    }

    #[test]
    fn results_are_sorted_and_bounded() {
        let idx = test_index();
        let results = matcher().search(&idx, &left_turn_query()).unwrap();
        assert!(results.len() <= MatcherConfig::default().top_k);
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for m in &results {
            assert!((0.0..=1.0).contains(&m.score));
            assert!(m.end < 500);
        }
    }

    #[test]
    fn nms_suppresses_same_track_overlaps() {
        let idx = test_index();
        // Refinement legitimately re-overlaps trimmed moments, so check the
        // NMS invariant on raw windows.
        let m = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                refine_boundaries: false,
                ..Default::default()
            },
        );
        let results = m.search(&idx, &left_turn_query()).unwrap();
        for i in 0..results.len() {
            for j in i + 1..results.len() {
                if results[i].track_ids == results[j].track_ids {
                    assert!(
                        results[i].temporal_iou(&results[j]) < m.config.nms_tiou,
                        "overlapping moments on same track survived NMS: {:?} {:?}",
                        results[i],
                        results[j]
                    );
                }
            }
        }
    }

    #[test]
    fn empty_query_and_empty_index() {
        let idx = test_index();
        let empty_q = Clip::new(10.0, 10.0, vec![]);
        assert!(matcher().search(&idx, &empty_q).unwrap().is_empty());
        let empty_idx = VideoIndex::from_clip("e", &Clip::new(10.0, 10.0, vec![]), 0, 30.0);
        assert!(matcher()
            .search(&empty_idx, &left_turn_query())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_with_no_tracks_returns_empty() {
        // Frames but no tracks: every window prunes, nothing panics.
        let idx = VideoIndex::from_clip("n", &Clip::new(10.0, 10.0, vec![]), 100, 30.0);
        assert!(matcher()
            .search(&idx, &left_turn_query())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn query_shorter_than_min_window_returns_empty() {
        let idx = test_index();
        let pts = (0..8u32)
            .map(|i| TrajPoint::new(i, BBox::new(i as f32 * 5.0, 300.0, 40.0, 25.0)))
            .collect();
        let q = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(0, ObjectClass::Car, pts)],
        );
        assert!(q.span() < MatcherConfig::default().min_window);
        assert!(matcher().search(&idx, &q).unwrap().is_empty());
    }

    #[test]
    fn windows_longer_than_video_are_skipped() {
        // A 20-frame video: every scale of the ~90-frame query exceeds it,
        // so all scales are skipped and the result set is empty.
        let pts = (0..20u32)
            .map(|f| TrajPoint::new(f, BBox::new(f as f32 * 5.0, 300.0, 40.0, 25.0)))
            .collect();
        let clip = Clip::new(
            1280.0,
            720.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let idx = VideoIndex::from_clip("short", &clip, 20, 30.0);
        assert!(matcher()
            .search(&idx, &left_turn_query())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn clamped_scales_do_not_duplicate_windows() {
        // A 16-frame query: scales 0.75 and 1.0 both clamp to
        // min_window = 16, so naive enumeration would emit every window
        // of that length twice.
        let m = matcher();
        let windows = m.enumerate_windows(16, 100);
        let distinct: HashSet<_> = windows.iter().collect();
        assert_eq!(
            distinct.len(),
            windows.len(),
            "duplicate windows enumerated: {windows:?}"
        );
        // Both clamped scales contribute one copy of the 16-frame grid;
        // scale 1.5 contributes the 24-frame grid.
        assert!(windows.iter().any(|&(s, e, _)| (s, e) == (0, 15)));
        assert!(windows.iter().any(|&(s, e, _)| (s, e) == (0, 23)));
        // The 16-frame grid strides by 4 and stops once a window touches
        // the last frame: starts 0, 4, ..., 84.
        let len16 = windows.iter().filter(|&&(s, e, _)| e - s == 15).count();
        assert_eq!(len16, (0..=84).step_by(4).count());
    }

    #[test]
    fn duplicate_scales_match_single_scale_results() {
        let idx = test_index();
        let query = left_turn_query();
        let single = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                window_scales: vec![1.0],
                ..Default::default()
            },
        )
        .search(&idx, &query)
        .unwrap();
        let duplicated = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                window_scales: vec![1.0, 1.0, 1.0],
                ..Default::default()
            },
        )
        .search(&idx, &query)
        .unwrap();
        assert_eq!(single, duplicated);
    }

    #[test]
    fn scores_stay_finite_on_degenerate_candidates() {
        // A stationary track has zero path length — a classical distance
        // can go non-finite there; the matcher must map that to a finite
        // score, never NaN.
        let pts = (0..200u32)
            .map(|f| TrajPoint::new(f, BBox::new(300.0, 300.0, 40.0, 25.0)))
            .collect();
        let clip = Clip::new(
            1280.0,
            720.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let idx = VideoIndex::from_clip("parked", &clip, 200, 30.0);
        for &kind in DistanceKind::ALL {
            let m = Matcher::new(ClassicalSimilarity::new(kind));
            for r in m.search(&idx, &left_turn_query()).unwrap() {
                assert!(r.score.is_finite(), "{kind:?} produced {:?}", r.score);
            }
        }
    }

    #[test]
    fn class_filter_prunes_wrong_classes() {
        let idx = test_index();
        // A person query over a cars-only index: no candidates at all.
        let person_query = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Person,
                (0..60)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(100.0 + i as f32 * 2.0, 300.0, 25.0, 60.0))
                    })
                    .collect(),
            )],
        );
        assert!(matcher().search(&idx, &person_query).unwrap().is_empty());
    }

    #[test]
    fn any_class_matches_everything() {
        let idx = test_index();
        let any_query = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Any,
                (0..90)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(100.0 + i as f32 * 7.0, 300.0, 80.0, 45.0))
                    })
                    .collect(),
            )],
        );
        let results = matcher().search(&idx, &any_query).unwrap();
        assert!(!results.is_empty());
    }

    #[test]
    fn multi_object_query_binds_distinct_tracks() {
        // Index with a car and a person crossing perpendicular.
        let car = Trajectory::from_points(
            1,
            ObjectClass::Car,
            (100..180)
                .map(|f| TrajPoint::new(f, BBox::new(400.0, (f - 100) as f32 * 5.0, 60.0, 35.0)))
                .collect(),
        );
        let person = Trajectory::from_points(
            2,
            ObjectClass::Person,
            (100..180)
                .map(|f| {
                    TrajPoint::new(
                        f,
                        BBox::new(100.0 + (f - 100) as f32 * 4.0, 250.0, 20.0, 50.0),
                    )
                })
                .collect(),
        );
        let clip = Clip::new(1280.0, 720.0, vec![car, person]);
        let idx = VideoIndex::from_clip("x", &clip, 300, 30.0);

        let query =
            sketchql_datasets::query_clip(sketchql_datasets::EventKind::PerpendicularCrossing);
        let results = matcher().search(&idx, &query).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        assert_eq!(top.track_ids.len(), 2);
        assert_eq!(top.track_ids[0], 1, "car slot binds the car");
        assert_eq!(top.track_ids[1], 2, "person slot binds the person");
    }

    #[test]
    fn refinement_trims_parked_margins() {
        // A track that parks for 40 frames, moves for 50, parks for 40.
        let mut pts = Vec::new();
        for f in 0..40u32 {
            pts.push(TrajPoint::new(f, BBox::new(100.0, 300.0, 40.0, 25.0)));
        }
        for f in 40..90u32 {
            pts.push(TrajPoint::new(
                f,
                BBox::new(100.0 + (f - 39) as f32 * 8.0, 300.0, 40.0, 25.0),
            ));
        }
        for f in 90..130u32 {
            pts.push(TrajPoint::new(f, BBox::new(508.0, 300.0, 40.0, 25.0)));
        }
        let clip = Clip::new(
            1280.0,
            720.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let idx = VideoIndex::from_clip("r", &clip, 130, 30.0);
        let mut m = RetrievedMoment {
            start: 0,
            end: 129,
            score: 1.0,
            track_ids: vec![1],
        };
        refine_boundaries(&idx, &mut m);
        assert!(m.start >= 35 && m.start <= 45, "start {}", m.start);
        assert!(m.end >= 85 && m.end <= 95, "end {}", m.end);
    }

    #[test]
    fn refinement_leaves_stationary_windows_alone() {
        let pts = (0..60u32)
            .map(|f| TrajPoint::new(f, BBox::new(100.0, 300.0, 40.0, 25.0)))
            .collect();
        let clip = Clip::new(
            1280.0,
            720.0,
            vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
        );
        let idx = VideoIndex::from_clip("s", &clip, 60, 30.0);
        let mut m = RetrievedMoment {
            start: 0,
            end: 59,
            score: 1.0,
            track_ids: vec![1],
        };
        refine_boundaries(&idx, &mut m);
        assert_eq!((m.start, m.end), (0, 59));
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let idx = test_index();
        let query = left_turn_query();
        let seq = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .search(&idx, &query)
        .unwrap();
        let par = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .search(&idx, &query)
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pre_cancelled_search_returns_cancelled_not_results() {
        let idx = test_index();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = matcher()
            .search_with_cancel(&idx, &left_turn_query(), &cancel)
            .unwrap_err();
        assert_eq!(err, MatchError::Cancelled(CancelReason::Cancelled));
        // Same through the parallel direct path.
        let m = Matcher::with_config(
            ClassicalSimilarity::new(DistanceKind::Dtw),
            MatcherConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let err = m
            .search_with_cancel(&idx, &left_turn_query(), &cancel)
            .unwrap_err();
        assert_eq!(err, MatchError::Cancelled(CancelReason::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let idx = test_index();
        let cancel = CancelToken::with_deadline_at(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let err = matcher()
            .search_with_cancel(&idx, &left_turn_query(), &cancel)
            .unwrap_err();
        assert_eq!(err, MatchError::Cancelled(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn null_token_search_matches_plain_search() {
        let idx = test_index();
        let q = left_turn_query();
        let plain = matcher().search(&idx, &q).unwrap();
        let tokened = matcher()
            .search_with_cancel(&idx, &q, &CancelToken::none())
            .unwrap();
        assert_eq!(plain, tokened);
        let live = matcher()
            .search_with_cancel(&idx, &q, &CancelToken::new())
            .unwrap();
        assert_eq!(plain, live);
    }

    #[test]
    fn batch_search_is_byte_identical_to_solo_searches() {
        let idx = test_index();
        let q1 = left_turn_query();
        let q2 = Clip::new(
            1000.0,
            600.0,
            vec![Trajectory::from_points(
                0,
                ObjectClass::Car,
                (0..90)
                    .map(|i| {
                        TrajPoint::new(i, BBox::new(100.0 + i as f32 * 7.0, 300.0, 80.0, 45.0))
                    })
                    .collect(),
            )],
        );
        let m = matcher();
        let solo: Vec<_> = [&q1, &q2, &q1]
            .iter()
            .map(|q| m.search(&idx, q).unwrap())
            .collect();
        let batch = m.search_batch(&idx, &[&q1, &q2, &q1], &CancelToken::none());
        assert_eq!(batch.len(), 3);
        for (b, s) in batch.into_iter().zip(solo) {
            assert_eq!(b.unwrap(), s, "fused result diverged from solo run");
        }
    }

    #[test]
    fn batch_search_settles_degenerate_queries_per_slot() {
        let idx = test_index();
        let q = left_turn_query();
        let empty = Clip::new(10.0, 10.0, vec![]);
        let batch = matcher().search_batch(&idx, &[&empty, &q], &CancelToken::none());
        assert_eq!(batch[0], Ok(vec![]));
        assert_eq!(batch[1], Ok(matcher().search(&idx, &q).unwrap()));
    }

    /// The fused path proper (shared cache + one encoder pass) only runs
    /// for embedding-based similarities; verify byte-identity there too.
    #[test]
    fn fused_batch_with_learned_similarity_is_byte_identical() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut store = sketchql_nn::ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = sketchql_nn::EncoderConfig {
            input_dim: sketchql_trajectory::TOKEN_DIM,
            steps: 16,
            ..Default::default()
        };
        let enc = sketchql_nn::TrajectoryEncoder::new(&mut store, &mut rng, "enc", cfg);
        let sim = crate::similarity::LearnedSimilarity::new(enc, store);
        assert!(sim.uses_embeddings());
        let m = Matcher::new(sim);

        let idx = test_index();
        let q1 = left_turn_query();
        let q2 = {
            let mut pts = Vec::new();
            for i in 0..90u32 {
                pts.push(TrajPoint::new(
                    i,
                    BBox::new(100.0 + i as f32 * 7.0, 300.0, 80.0, 45.0),
                ));
            }
            Clip::new(
                1000.0,
                600.0,
                vec![Trajectory::from_points(0, ObjectClass::Car, pts)],
            )
        };
        let solo: Vec<_> = [&q1, &q2, &q1]
            .iter()
            .map(|q| m.search(&idx, q).unwrap())
            .collect();
        let batch = m.search_batch(&idx, &[&q1, &q2, &q1], &CancelToken::none());
        for (b, s) in batch.into_iter().zip(solo) {
            assert_eq!(b.unwrap(), s, "fused learned result diverged from solo");
        }
    }

    #[test]
    fn cancelled_batch_fails_every_slot() {
        let idx = test_index();
        let q = left_turn_query();
        let cancel = CancelToken::new();
        cancel.cancel();
        let batch = matcher().search_batch(&idx, &[&q, &q], &cancel);
        for r in batch {
            assert_eq!(r, Err(MatchError::Cancelled(CancelReason::Cancelled)));
        }
    }

    #[test]
    fn temporal_iou_helper() {
        let a = RetrievedMoment {
            start: 0,
            end: 99,
            score: 1.0,
            track_ids: vec![],
        };
        let b = RetrievedMoment {
            start: 50,
            end: 149,
            score: 1.0,
            track_ids: vec![],
        };
        let c = RetrievedMoment {
            start: 200,
            end: 220,
            score: 1.0,
            track_ids: vec![],
        };
        assert!((a.temporal_iou(&b) - 50.0 / 150.0).abs() < 1e-5);
        assert_eq!(a.temporal_iou(&c), 0.0);
        assert!((a.temporal_iou(&a) - 1.0).abs() < 1e-6);
    }
}
