//! T5 — preprocessing throughput: detector simulation + ByteTrack tracking
//! per video length, plus the Hungarian-assignment microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchql_bench::bench_video;
use sketchql_tracker::{hungarian, track_detections, DetectorConfig, DetectorSim, TrackerConfig};
use std::hint::black_box;

fn bench_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for events_per_kind in [1usize, 2] {
        let video = bench_video(events_per_kind, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let sim = DetectorSim::new(DetectorConfig::default());
        let det_frames = sim.detect_clip(&video.truth, video.frames, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("bytetrack", video.frames),
            &det_frames,
            |b, frames| b.iter(|| black_box(track_detections(frames, TrackerConfig::default(), 8))),
        );
        group.bench_with_input(
            BenchmarkId::new("detector_sim", video.frames),
            &video,
            |b, v| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    black_box(sim.detect_clip(&v.truth, v.frames, &mut rng))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("hungarian");
    for n in [4usize, 16, 48] {
        let mut rng = StdRng::seed_from_u64(3);
        let cost: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| black_box(hungarian::assign(cost, f32::INFINITY)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracker);
criterion_main!(benches);
