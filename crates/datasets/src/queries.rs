//! Canonical sketch strokes for each event kind.
//!
//! A user expresses a query by dragging objects across the canvas; this
//! module records, for every [`EventKind`], the idealized mouse strokes such
//! a user would draw (one stroke = one drag-and-drop segment, per object,
//! with relative timing). Examples feed these strokes through the sketcher
//! exactly as GUI input would arrive; lower-level tests convert them to
//! query clips directly via [`query_clip`].
//!
//! Strokes are authored on a 1000x600 canvas in screen coordinates
//! (y grows downward), mirroring the tldraw canvas of the real interface.

use serde::{Deserialize, Serialize};
use sketchql_trajectory::{BBox, Clip, ObjectClass, Point2, TrajPoint, Trajectory};

use crate::events::EventKind;

/// Canvas width used by the canonical sketches.
pub const CANVAS_W: f32 = 1000.0;
/// Canvas height used by the canonical sketches.
pub const CANVAS_H: f32 = 600.0;

/// One drag-and-drop stroke of one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchStroke {
    /// Mouse path in canvas coordinates.
    pub path: Vec<Point2>,
    /// Time step (in abstract sketch ticks) at which the stroke begins;
    /// the trajectory panel manipulates this.
    pub start_tick: u32,
    /// Duration of the stroke in ticks (panel stretching changes this).
    pub ticks: u32,
}

/// The strokes a user would draw for one object of a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchObject {
    /// The object type the user selects at creation time.
    pub class: ObjectClass,
    /// Nominal on-canvas object size (the placed icon's box).
    pub size: (f32, f32),
    /// The drag strokes, in panel order.
    pub strokes: Vec<SketchStroke>,
}

/// A full canonical sketch: what the user draws for an event kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalSketch {
    /// The event this sketch queries for.
    pub kind: EventKind,
    /// Per-object strokes.
    pub objects: Vec<SketchObject>,
}

fn pts(coords: &[(f32, f32)]) -> Vec<Point2> {
    coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
}

/// Samples `n` points along a quarter-ish arc from `from` to `to`, bulging
/// via the control point `ctrl` (quadratic Bézier).
fn bezier(from: (f32, f32), ctrl: (f32, f32), to: (f32, f32), n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let t = i as f32 / (n - 1) as f32;
            let u = 1.0 - t;
            Point2::new(
                u * u * from.0 + 2.0 * u * t * ctrl.0 + t * t * to.0,
                u * u * from.1 + 2.0 * u * t * ctrl.1 + t * t * to.1,
            )
        })
        .collect()
}

/// The canonical sketch a user draws for `kind`.
///
/// Conventions: screen y grows downward, so a "left turn" of a vehicle
/// driving rightward curves *upward* on screen (towards smaller y), as in
/// the paper's Figure 2.
pub fn canonical_sketch(kind: EventKind) -> CanonicalSketch {
    let car = (90.0, 50.0);
    let person = (24.0, 60.0);
    let objects = match kind {
        EventKind::LeftTurn => vec![SketchObject {
            class: ObjectClass::Car,
            size: car,
            strokes: vec![SketchStroke {
                // Drive right, then arc up.
                path: {
                    let mut p = pts(&[
                        (150.0, 450.0),
                        (250.0, 450.0),
                        (350.0, 450.0),
                        (450.0, 450.0),
                    ]);
                    p.extend(bezier((450.0, 450.0), (620.0, 450.0), (640.0, 280.0), 8));
                    p.extend(pts(&[(645.0, 220.0), (650.0, 150.0), (655.0, 90.0)]));
                    p
                },
                start_tick: 0,
                ticks: 90,
            }],
        }],
        EventKind::RightTurn => vec![SketchObject {
            class: ObjectClass::Car,
            size: car,
            strokes: vec![SketchStroke {
                path: {
                    let mut p = pts(&[
                        (150.0, 150.0),
                        (250.0, 150.0),
                        (350.0, 150.0),
                        (450.0, 150.0),
                    ]);
                    p.extend(bezier((450.0, 150.0), (620.0, 150.0), (640.0, 320.0), 8));
                    p.extend(pts(&[(645.0, 380.0), (650.0, 450.0), (655.0, 510.0)]));
                    p
                },
                start_tick: 0,
                ticks: 90,
            }],
        }],
        EventKind::UTurn => vec![SketchObject {
            class: ObjectClass::Car,
            size: car,
            strokes: vec![SketchStroke {
                path: {
                    let mut p = pts(&[(150.0, 400.0), (280.0, 400.0), (420.0, 400.0)]);
                    p.extend(bezier((420.0, 400.0), (700.0, 400.0), (700.0, 300.0), 6));
                    p.extend(bezier((700.0, 300.0), (700.0, 200.0), (420.0, 200.0), 6));
                    p.extend(pts(&[(280.0, 200.0), (150.0, 200.0)]));
                    p
                },
                start_tick: 0,
                ticks: 95,
            }],
        }],
        EventKind::StopAndGo => vec![SketchObject {
            class: ObjectClass::Car,
            size: car,
            strokes: vec![
                SketchStroke {
                    path: pts(&[
                        (150.0, 300.0),
                        (250.0, 300.0),
                        (350.0, 300.0),
                        (430.0, 300.0),
                    ]),
                    start_tick: 0,
                    ticks: 30,
                },
                // The pause: a stroke that stays in place.
                SketchStroke {
                    path: pts(&[(430.0, 300.0), (430.0, 300.0), (430.0, 300.0)]),
                    start_tick: 30,
                    ticks: 25,
                },
                SketchStroke {
                    path: pts(&[
                        (430.0, 300.0),
                        (520.0, 300.0),
                        (650.0, 300.0),
                        (800.0, 300.0),
                    ]),
                    start_tick: 55,
                    ticks: 35,
                },
            ],
        }],
        EventKind::LaneChange => vec![SketchObject {
            class: ObjectClass::Car,
            size: car,
            strokes: vec![SketchStroke {
                path: {
                    let mut p = pts(&[(120.0, 340.0), (240.0, 340.0), (360.0, 340.0)]);
                    p.extend(bezier((360.0, 340.0), (480.0, 340.0), (520.0, 290.0), 6));
                    p.extend(bezier((520.0, 290.0), (560.0, 250.0), (680.0, 250.0), 6));
                    p.extend(pts(&[(790.0, 250.0), (880.0, 250.0)]));
                    p
                },
                start_tick: 0,
                ticks: 80,
            }],
        }],
        EventKind::PerpendicularCrossing => vec![
            SketchObject {
                class: ObjectClass::Car,
                size: car,
                strokes: vec![SketchStroke {
                    // Car moves vertically (top to bottom).
                    path: pts(&[
                        (500.0, 80.0),
                        (500.0, 180.0),
                        (500.0, 280.0),
                        (500.0, 380.0),
                        (500.0, 480.0),
                    ]),
                    start_tick: 0,
                    ticks: 80,
                }],
            },
            SketchObject {
                class: ObjectClass::Person,
                size: person,
                strokes: vec![SketchStroke {
                    // Person moves horizontally, synchronized with the car
                    // (Figure 4: the panel boxes are aligned).
                    path: pts(&[
                        (200.0, 300.0),
                        (350.0, 300.0),
                        (500.0, 300.0),
                        (650.0, 300.0),
                        (800.0, 300.0),
                    ]),
                    start_tick: 0,
                    ticks: 80,
                }],
            },
        ],
        EventKind::Overtake => vec![
            SketchObject {
                class: ObjectClass::Car,
                size: car,
                strokes: vec![SketchStroke {
                    // Fast car: long horizontal sweep.
                    path: pts(&[
                        (100.0, 330.0),
                        (300.0, 330.0),
                        (500.0, 330.0),
                        (700.0, 330.0),
                        (900.0, 330.0),
                    ]),
                    start_tick: 0,
                    ticks: 80,
                }],
            },
            SketchObject {
                class: ObjectClass::Car,
                size: car,
                strokes: vec![SketchStroke {
                    // Slow car: shorter sweep in the same time, offset lane.
                    path: pts(&[
                        (400.0, 270.0),
                        (480.0, 270.0),
                        (560.0, 270.0),
                        (640.0, 270.0),
                    ]),
                    start_tick: 0,
                    ticks: 80,
                }],
            },
        ],
        EventKind::Loiter => vec![SketchObject {
            class: ObjectClass::Person,
            size: person,
            strokes: vec![
                SketchStroke {
                    path: pts(&[(400.0, 300.0), (440.0, 290.0), (470.0, 300.0)]),
                    start_tick: 0,
                    ticks: 20,
                },
                SketchStroke {
                    path: pts(&[(470.0, 300.0), (470.0, 330.0), (450.0, 350.0)]),
                    start_tick: 20,
                    ticks: 25,
                },
                SketchStroke {
                    path: pts(&[(450.0, 350.0), (420.0, 340.0), (400.0, 320.0)]),
                    start_tick: 45,
                    ticks: 25,
                },
            ],
        }],
    };
    CanonicalSketch { kind, objects }
}

/// Compiles a canonical sketch into a query [`Clip`] directly (bypassing
/// the interactive sketcher): strokes are resampled uniformly over their
/// tick spans, and the object's icon box rides along the path.
pub fn query_clip(kind: EventKind) -> Clip {
    let sketch = canonical_sketch(kind);
    let mut objects = Vec::with_capacity(sketch.objects.len());
    for (i, obj) in sketch.objects.iter().enumerate() {
        let mut points = Vec::new();
        for stroke in &obj.strokes {
            let n = stroke.ticks.max(1);
            for t in 0..n {
                let frac = t as f32 / n.max(2).saturating_sub(1) as f32;
                let pos = sample_path(&stroke.path, frac);
                points.push(TrajPoint::new(
                    stroke.start_tick + t,
                    BBox::new(pos.x, pos.y, obj.size.0, obj.size.1),
                ));
            }
        }
        objects.push(Trajectory::from_points(i as u64, obj.class, points));
    }
    Clip::new(CANVAS_W, CANVAS_H, objects)
}

/// Arc-length-parameterized sampling of a polyline at `t in [0, 1]`.
pub fn sample_path(path: &[Point2], t: f32) -> Point2 {
    assert!(!path.is_empty(), "empty path");
    if path.len() == 1 {
        return path[0];
    }
    let total: f32 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
    if total <= f32::EPSILON {
        return path[0];
    }
    let target = t.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for w in path.windows(2) {
        let seg = w[0].distance(&w[1]);
        if acc + seg >= target && seg > 0.0 {
            let local = (target - acc) / seg;
            return w[0].lerp(&w[1], local);
        }
        acc += seg;
    }
    *path.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_sketch_with_matching_arity() {
        for &k in EventKind::ALL {
            let s = canonical_sketch(k);
            assert_eq!(s.objects.len(), k.num_objects(), "{k}");
            for (obj, class) in s.objects.iter().zip(k.participant_classes()) {
                assert_eq!(obj.class, class);
                assert!(!obj.strokes.is_empty());
                for stroke in &obj.strokes {
                    assert!(stroke.path.len() >= 2 || stroke.ticks > 0);
                }
            }
        }
    }

    #[test]
    fn query_clips_are_valid_for_all_kinds() {
        for &k in EventKind::ALL {
            let c = query_clip(k);
            assert!(!c.is_empty(), "{k}");
            assert_eq!(c.num_objects(), k.num_objects());
            for t in &c.objects {
                assert!(t.len() >= 10, "{k} has only {} points", t.len());
            }
        }
    }

    #[test]
    fn left_turn_query_goes_right_then_up() {
        let c = query_clip(EventKind::LeftTurn);
        let centers = c.objects[0].centers();
        let first = centers.first().unwrap();
        let last = centers.last().unwrap();
        assert!(last.x > first.x, "moves right");
        assert!(last.y < first.y, "ends higher on screen (y down)");
        // The turn is roughly 90°.
        let turning = c.objects[0].total_turning().abs();
        assert!((0.9..2.2).contains(&turning), "turning {turning}");
    }

    #[test]
    fn left_and_right_turns_are_mirrored_shapes() {
        let l = query_clip(EventKind::LeftTurn);
        let r = query_clip(EventKind::RightTurn);
        // Opposite signed turning.
        let tl = l.objects[0].total_turning();
        let tr = r.objects[0].total_turning();
        assert!(tl * tr < 0.0, "turn signs should differ: {tl} vs {tr}");
    }

    #[test]
    fn perpendicular_query_objects_are_synchronized() {
        let c = query_clip(EventKind::PerpendicularCrossing);
        assert_eq!(c.objects[0].start_frame(), c.objects[1].start_frame());
        let span0 = c.objects[0].span();
        let span1 = c.objects[1].span();
        assert!((span0 as i64 - span1 as i64).abs() <= 1);
    }

    #[test]
    fn stop_and_go_query_has_stationary_middle() {
        let c = query_clip(EventKind::StopAndGo);
        let t = &c.objects[0];
        // Middle third should move much less than the outer thirds.
        let cs = t.centers();
        let third = cs.len() / 3;
        let seg_len = |s: &[Point2]| -> f32 { s.windows(2).map(|w| w[0].distance(&w[1])).sum() };
        let mid = seg_len(&cs[third..2 * third]);
        let outer = seg_len(&cs[..third]) + seg_len(&cs[2 * third..]);
        assert!(mid < outer * 0.3, "mid {mid} outer {outer}");
    }

    #[test]
    fn sample_path_endpoints_and_arc_length() {
        let path = pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        assert_eq!(sample_path(&path, 0.0), Point2::new(0.0, 0.0));
        assert_eq!(sample_path(&path, 1.0), Point2::new(10.0, 10.0));
        // Halfway along a 20-length path = (10, 0).
        let mid = sample_path(&path, 0.5);
        assert!((mid.x - 10.0).abs() < 1e-4);
        assert!(mid.y.abs() < 1e-4);
    }

    #[test]
    fn sample_path_degenerate_cases() {
        let single = pts(&[(3.0, 4.0)]);
        assert_eq!(sample_path(&single, 0.7), Point2::new(3.0, 4.0));
        let stationary = pts(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(sample_path(&stationary, 0.5), Point2::new(1.0, 1.0));
    }

    #[test]
    fn overtake_query_fast_object_covers_more_ground() {
        let c = query_clip(EventKind::Overtake);
        let fast = c.objects[0].path_length();
        let slow = c.objects[1].path_length();
        assert!(fast > slow * 2.0);
    }
}
