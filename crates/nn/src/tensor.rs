//! A minimal dense 2D tensor.
//!
//! Everything in the encoder is expressible with rank-2 tensors: a token
//! sequence is `T x D`, a weight matrix is `In x Out`, a bias or an embedding
//! is `1 x D`, and a scalar loss is `1 x 1`. Keeping the rank fixed makes the
//! autograd op set small and every backward rule easy to verify.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major 2D tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data; `data.len() == rows * cols`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Xavier/Glorot-uniform initialization for a `rows x cols` weight.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The scalar value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// If the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "item() on non-scalar tensor"
        );
        self.data[0]
    }

    /// Matrix multiplication `self (R x K) @ other (K x C) -> R x C`.
    ///
    /// Straightforward ikj-ordered triple loop — cache-friendly on row-major
    /// data and fast enough for the model sizes SketchQL trains.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul inner dim mismatch");
        let (r, k, c) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(r, c);
        for i in 0..r {
            let out_row = &mut out.data[i * c..(i + 1) * c];
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * c..(kk + 1) * c];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Whether all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_checks_dims() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!(t.rows, 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn xavier_within_limit_and_seeded() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::xavier(16, 16, &mut rng);
        let limit = (6.0 / 32.0f32).sqrt();
        assert!(t.data.iter().all(|x| x.abs() <= limit));
        let mut rng2 = StdRng::seed_from_u64(42);
        let t2 = Tensor::xavier(16, 16, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_panics_on_matrix() {
        let _ = Tensor::zeros(2, 2).item();
    }

    #[test]
    fn add_scaled_and_norm() {
        let mut a = Tensor::ones(1, 4);
        let b = Tensor::full(1, 4, 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data, vec![2.0; 4]);
        assert_eq!(a.norm(), 4.0);
    }
}
