//! Basic 2D/3D geometry primitives shared across SketchQL.
//!
//! All coordinates are `f32`. 2D points live in *screen space* (pixels or a
//! normalized unit frame), 3D points live in the simulator's *world space*
//! (meters, ground plane is `z = 0`).

use serde::{Deserialize, Serialize};

/// A point (or vector) in 2D screen space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate.
    pub y: f32,
}

impl Point2 {
    /// The origin / zero vector.
    pub const ZERO: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(x: f32, y: f32) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point2) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when only ordering matters).
    #[inline]
    pub fn distance_sq(&self, other: &Point2) -> f32 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Vector length.
    #[inline]
    pub fn norm(&self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Point2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z component of the 3D cross product).
    #[inline]
    pub fn cross(&self, other: &Point2) -> f32 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation between `self` (t=0) and `other` (t=1).
    #[inline]
    pub fn lerp(&self, other: &Point2, t: f32) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Heading angle of this vector in radians, in `(-pi, pi]`.
    #[inline]
    pub fn angle(&self) -> f32 {
        self.y.atan2(self.x)
    }

    /// Returns the unit vector in the same direction, or zero if degenerate.
    pub fn normalized(&self) -> Point2 {
        let n = self.norm();
        if n <= f32::EPSILON {
            Point2::ZERO
        } else {
            Point2::new(self.x / n, self.y / n)
        }
    }

    /// Rotate this vector by `theta` radians counter-clockwise.
    pub fn rotated(&self, theta: f32) -> Point2 {
        let (s, c) = theta.sin_cos();
        Point2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

impl std::ops::Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f32> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f32) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl std::ops::Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

/// A point (or vector) in 3D world space. `z` is "up".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// East coordinate.
    pub x: f32,
    /// North coordinate.
    pub y: f32,
    /// Up coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin / zero vector.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// Point on the ground plane (`z = 0`).
    #[inline]
    pub fn ground(x: f32, y: f32) -> Self {
        Point3 { x, y, z: 0.0 }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point3) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Vector length.
    #[inline]
    pub fn norm(&self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the unit vector in the same direction, or zero if degenerate.
    pub fn normalized(&self) -> Point3 {
        let n = self.norm();
        if n <= f32::EPSILON {
            Point3::ZERO
        } else {
            Point3::new(self.x / n, self.y / n, self.z / n)
        }
    }

    /// Projection onto the ground plane, discarding `z`.
    #[inline]
    pub fn xy(&self) -> Point2 {
        Point2::new(self.x, self.y)
    }
}

impl std::ops::Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl std::ops::Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl std::ops::Mul<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f32) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

/// Normalizes an angle into `(-pi, pi]`.
pub fn wrap_angle(mut a: f32) -> f32 {
    use std::f32::consts::PI;
    while a > PI {
        a -= 2.0 * PI;
    }
    while a <= -PI {
        a += 2.0 * PI;
    }
    a
}

/// Smallest absolute difference between two angles, in `[0, pi]`.
pub fn angle_diff(a: f32, b: f32) -> f32 {
    wrap_angle(a - b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn point2_distance_and_norm() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.norm(), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn point2_lerp_endpoints_and_midpoint() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, 6.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point2::new(2.0, 4.0));
    }

    #[test]
    fn point2_rotation_quarter_turn() {
        let v = Point2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x - 0.0).abs() < 1e-6);
        assert!((v.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn point2_cross_sign_encodes_turn_direction() {
        let forward = Point2::new(1.0, 0.0);
        let left = Point2::new(0.0, 1.0);
        assert!(forward.cross(&left) > 0.0);
        assert!(left.cross(&forward) < 0.0);
    }

    #[test]
    fn point2_normalized_handles_zero() {
        assert_eq!(Point2::ZERO.normalized(), Point2::ZERO);
        let v = Point2::new(0.0, 5.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn point3_cross_is_orthogonal() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        let c = a.cross(&b);
        assert_eq!(c, Point3::new(0.0, 0.0, 1.0));
        assert_eq!(a.dot(&c), 0.0);
        assert_eq!(b.dot(&c), 0.0);
    }

    #[test]
    fn wrap_angle_into_range() {
        // The boundary value maps to +/- pi depending on f32 rounding.
        assert!((wrap_angle(3.0 * PI).abs() - PI).abs() < 1e-5);
        assert!((wrap_angle(-3.0 * PI).abs() - PI).abs() < 1e-5);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn angle_diff_is_symmetric_and_bounded() {
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-6);
        assert!((angle_diff(PI - 0.05, -(PI - 0.05)) - 0.1).abs() < 1e-4);
    }
}
