//! Ground-truth event vocabulary.
//!
//! Each [`EventKind`] is a semantically meaningful motion event of the sort
//! the demo paper queries for — Q1 is [`EventKind::LeftTurn`], Q2 is
//! [`EventKind::PerpendicularCrossing`] — together with a randomized 3D
//! instantiation (who moves, where, how) used to embed labeled occurrences
//! into synthetic videos.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_simulator::{templates, Agent, MotionPrimitive, MotionScript};
use sketchql_trajectory::{ObjectClass, Point2};
use std::f32::consts::FRAC_PI_2;
#[cfg(test)]
use std::f32::consts::PI;

/// The catalogue of queryable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A car making a left turn (the demo's Q1).
    LeftTurn,
    /// A car making a right turn.
    RightTurn,
    /// A car making a U-turn.
    UTurn,
    /// A car stopping then accelerating away.
    StopAndGo,
    /// A car changing lanes (S-curve).
    LaneChange,
    /// A car and a person moving perpendicular to each other (the demo's
    /// Q2).
    PerpendicularCrossing,
    /// One car overtaking another travelling in the same direction.
    Overtake,
    /// A person loitering (wander, pause, wander).
    Loiter,
}

impl EventKind {
    /// Every kind, in a stable order (experiment tables iterate this).
    pub const ALL: &'static [EventKind] = &[
        EventKind::LeftTurn,
        EventKind::RightTurn,
        EventKind::UTurn,
        EventKind::StopAndGo,
        EventKind::LaneChange,
        EventKind::PerpendicularCrossing,
        EventKind::Overtake,
        EventKind::Loiter,
    ];

    /// Machine-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LeftTurn => "left_turn",
            EventKind::RightTurn => "right_turn",
            EventKind::UTurn => "u_turn",
            EventKind::StopAndGo => "stop_and_go",
            EventKind::LaneChange => "lane_change",
            EventKind::PerpendicularCrossing => "perpendicular_crossing",
            EventKind::Overtake => "overtake",
            EventKind::Loiter => "loiter",
        }
    }

    /// The classes of the participating objects, in query-slot order.
    pub fn participant_classes(&self) -> Vec<ObjectClass> {
        match self {
            EventKind::PerpendicularCrossing => vec![ObjectClass::Car, ObjectClass::Person],
            EventKind::Overtake => vec![ObjectClass::Car, ObjectClass::Car],
            EventKind::Loiter => vec![ObjectClass::Person],
            _ => vec![ObjectClass::Car],
        }
    }

    /// Number of participating objects.
    pub fn num_objects(&self) -> usize {
        self.participant_classes().len()
    }

    /// Instantiates a random occurrence of this event.
    ///
    /// `center` places the event in the world; `rng` randomizes headings,
    /// speeds, turn angles (acute through obtuse, per Figure 1 of the
    /// paper), and per-agent bodies. Returns one `(Agent, MotionScript)`
    /// per participant, in [`Self::participant_classes`] order.
    pub fn instantiate<R: Rng>(&self, center: Point2, rng: &mut R) -> Vec<(Agent, MotionScript)> {
        let heading = rng.gen_range(0.0..std::f32::consts::TAU);
        let speed_jitter = rng.gen_range(0.75..1.25);
        let car_speed = 8.0 * speed_jitter;
        let person_speed = 1.4 * speed_jitter;
        // Back the start position off so the motion passes near `center`.
        let back = |h: f32, d: f32| center - Point2::new(h.cos(), h.sin()) * d;

        match self {
            EventKind::LeftTurn => {
                // Acute to obtuse turn angles: 50°..130°.
                let angle = rng.gen_range(50f32.to_radians()..130f32.to_radians());
                let start = back(heading, 10.0);
                vec![(
                    Agent::sample(ObjectClass::Car, rng),
                    templates::left_turn(start, heading, car_speed, angle),
                )]
            }
            EventKind::RightTurn => {
                let angle = rng.gen_range(50f32.to_radians()..130f32.to_radians());
                let start = back(heading, 10.0);
                vec![(
                    Agent::sample(ObjectClass::Car, rng),
                    templates::right_turn(start, heading, car_speed, angle),
                )]
            }
            EventKind::UTurn => {
                let start = back(heading, 8.0);
                vec![(
                    Agent::sample(ObjectClass::Car, rng),
                    templates::u_turn(start, heading, car_speed * 0.8),
                )]
            }
            EventKind::StopAndGo => {
                let start = back(heading, 10.0);
                vec![(
                    Agent::sample(ObjectClass::Car, rng),
                    templates::stop_and_go(start, heading, car_speed),
                )]
            }
            EventKind::LaneChange => {
                let start = back(heading, 10.0);
                vec![(
                    Agent::sample(ObjectClass::Car, rng),
                    templates::lane_change(start, heading, car_speed),
                )]
            }
            EventKind::PerpendicularCrossing => {
                // Car passes through `center`; person crosses its path at
                // 90°, timed to be near the crossing point together.
                let car_heading = heading;
                let person_heading =
                    heading + FRAC_PI_2 * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let car_frames = 80u32;
                let person_frames = 80u32;
                let car_dist = car_speed / 30.0 * car_frames as f32;
                let person_dist = person_speed / 30.0 * person_frames as f32;
                let car = (
                    Agent::sample(ObjectClass::Car, rng),
                    templates::straight_pass(
                        back(car_heading, car_dist * 0.5),
                        car_heading,
                        car_speed,
                        car_frames,
                    ),
                );
                let person = (
                    Agent::sample(ObjectClass::Person, rng),
                    templates::straight_pass(
                        back(person_heading, person_dist * 0.5)
                            + Point2::new(person_heading.cos(), person_heading.sin()) * -1.5,
                        person_heading,
                        person_speed,
                        person_frames,
                    ),
                );
                vec![car, person]
            }
            EventKind::Overtake => {
                // Two cars, same heading, laterally offset; rear car faster.
                let lateral = Point2::new(-heading.sin(), heading.cos()) * 3.0;
                let slow = (
                    Agent::sample(ObjectClass::Car, rng),
                    templates::straight_pass(back(heading, 8.0), heading, car_speed * 0.55, 80),
                );
                let fast = (
                    Agent::sample(ObjectClass::Car, rng),
                    templates::straight_pass(
                        back(heading, 20.0) + lateral,
                        heading,
                        car_speed * 1.2,
                        80,
                    ),
                );
                vec![fast, slow]
            }
            EventKind::Loiter => {
                vec![(
                    Agent::sample(ObjectClass::Person, rng),
                    templates::loiter(center, heading, person_speed),
                )]
            }
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds motion primitives for a wandering distractor agent: background
/// traffic that should *not* match any query.
pub fn distractor_script<R: Rng>(center: Point2, rng: &mut R) -> (Agent, MotionScript) {
    let class = if rng.gen_bool(0.55) {
        ObjectClass::Car
    } else {
        ObjectClass::Person
    };
    let speed = sketchql_simulator::class_priors(class).speed_mps * rng.gen_range(0.6..1.2);
    let heading = rng.gen_range(0.0..std::f32::consts::TAU);
    let start = center + Point2::new(rng.gen_range(-25.0..25.0), rng.gen_range(-25.0..25.0));
    let mut script = MotionScript::new(start, heading, speed);
    // Mostly gentle straight motion with the occasional mild bend — shapes
    // that are deliberately *near* but not *at* the event vocabulary.
    for _ in 0..rng.gen_range(1..=3) {
        let prim = match rng.gen_range(0..6) {
            0..=3 => MotionPrimitive::Straight {
                frames: rng.gen_range(25..60),
                speed: 1.0,
            },
            4 => MotionPrimitive::Turn {
                frames: rng.gen_range(25..45),
                angle: rng.gen_range(-0.5..0.5),
                speed: 1.0,
            },
            _ => MotionPrimitive::Stop {
                frames: rng.gen_range(10..25),
            },
        };
        script = script.then(prim);
    }
    (Agent::sample(class, rng), script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_trajectory::wrap_angle;

    #[test]
    fn all_kinds_have_unique_names() {
        let names: std::collections::HashSet<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn participant_arity_matches_instantiation() {
        let mut rng = StdRng::seed_from_u64(1);
        for &k in EventKind::ALL {
            let inst = k.instantiate(Point2::ZERO, &mut rng);
            assert_eq!(inst.len(), k.num_objects(), "{k}");
            for ((agent, _), class) in inst.iter().zip(k.participant_classes()) {
                assert_eq!(agent.class, class, "{k}");
            }
        }
    }

    #[test]
    fn left_turn_instances_vary_in_angle() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut angles = Vec::new();
        for _ in 0..20 {
            let inst = EventKind::LeftTurn.instantiate(Point2::ZERO, &mut rng);
            let poses = inst[0].1.integrate(30.0);
            let net_turn = wrap_angle(poses.last().unwrap().heading - poses[0].heading);
            angles.push(net_turn);
            assert!(net_turn > 0.0, "left turn must turn left (positive angle)");
        }
        let min = angles.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = angles.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(
            max - min > 0.5,
            "angles should vary (Figure 1 diversity), got {min}..{max}"
        );
    }

    #[test]
    fn right_turn_turns_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = EventKind::RightTurn.instantiate(Point2::ZERO, &mut rng);
        let poses = inst[0].1.integrate(30.0);
        let net = wrap_angle(poses.last().unwrap().heading - poses[0].heading);
        assert!(net < 0.0);
    }

    #[test]
    fn u_turn_reverses() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = EventKind::UTurn.instantiate(Point2::ZERO, &mut rng);
        let poses = inst[0].1.integrate(30.0);
        let net = wrap_angle(poses.last().unwrap().heading - poses[0].heading).abs();
        assert!((net - PI).abs() < 0.1, "net turn {net}");
    }

    #[test]
    fn perpendicular_crossing_is_perpendicular_and_meets() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = EventKind::PerpendicularCrossing.instantiate(Point2::ZERO, &mut rng);
        let car = inst[0].1.integrate(30.0);
        let person = inst[1].1.integrate(30.0);
        let dh = wrap_angle(car[0].heading - person[0].heading).abs();
        assert!(
            (dh - FRAC_PI_2).abs() < 1e-3,
            "headings differ by 90°, got {dh}"
        );
        // They pass near each other at some point.
        let min_dist = car
            .iter()
            .zip(&person)
            .map(|(a, b)| a.position.distance(&b.position))
            .fold(f32::INFINITY, f32::min);
        assert!(
            min_dist < 6.0,
            "paths should nearly cross, min dist {min_dist}"
        );
    }

    #[test]
    fn overtake_fast_car_passes_slow_car() {
        let mut rng = StdRng::seed_from_u64(6);
        let inst = EventKind::Overtake.instantiate(Point2::ZERO, &mut rng);
        let fast = inst[0].1.integrate(30.0);
        let slow = inst[1].1.integrate(30.0);
        let h = fast[0].heading;
        let along = |p: Point2| p.x * h.cos() + p.y * h.sin();
        // Fast starts behind, ends ahead.
        assert!(along(fast[0].position) < along(slow[0].position));
        assert!(along(fast.last().unwrap().position) > along(slow.last().unwrap().position));
    }

    #[test]
    fn stop_and_go_contains_a_stationary_stretch() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = EventKind::StopAndGo.instantiate(Point2::ZERO, &mut rng);
        let poses = inst[0].1.integrate(30.0);
        let stationary = poses.iter().filter(|p| p.speed == 0.0).count();
        assert!(stationary >= 20);
    }

    #[test]
    fn events_pass_near_requested_center() {
        let mut rng = StdRng::seed_from_u64(8);
        let center = Point2::new(40.0, -20.0);
        for &k in EventKind::ALL {
            let inst = k.instantiate(center, &mut rng);
            let min_dist = inst
                .iter()
                .flat_map(|(_, s)| s.integrate(30.0))
                .map(|p| p.position.distance(&center))
                .fold(f32::INFINITY, f32::min);
            assert!(min_dist < 15.0, "{k} strays from center: {min_dist}");
        }
    }

    #[test]
    fn distractors_are_mobile_and_varied() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut classes = std::collections::HashSet::new();
        for _ in 0..30 {
            let (agent, script) = distractor_script(Point2::ZERO, &mut rng);
            classes.insert(agent.class);
            assert!(!script.primitives.is_empty());
        }
        assert!(classes.len() >= 2);
    }
}
