//! Size-cap rotation of the slow-query log. Alone in its own test
//! binary: the sink is process-global, and any concurrently finalizing
//! trace in the same process would also write into the capped file.

use std::time::Duration;

use sketchql_telemetry as tel;

#[test]
fn slow_query_log_rotates_at_the_size_cap() {
    if !tel::is_enabled() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("sketchql-slowlog-rot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slow.jsonl");
    let rotated = dir.join("slow.jsonl.1");

    const CAP: u64 = 600;
    tel::configure_slow_query_log_path_capped(&path, Duration::ZERO, Some(CAP)).unwrap();

    // Threshold 0 means every finalized trace qualifies; each line is
    // on the order of 150 bytes, so 20 traces overflow the cap several
    // times over and force at least one rotation.
    for i in 0..20 {
        let ctx = tel::TraceContext::new();
        ctx.set_label(format!("rotation/query-{i}"));
        let _ = ctx.finalize();
    }
    tel::disable_slow_query_log();

    let live = std::fs::metadata(&path).expect("live log exists").len();
    let old = std::fs::metadata(&rotated).expect("rotated predecessor exists");
    assert!(old.len() > 0, "predecessor keeps the rotated-out lines");
    // The cap is checked before each write, so the live file never
    // exceeds the cap by more than one line.
    assert!(
        live <= CAP + 512,
        "live log stays near the cap (was {live} bytes)"
    );
    // Exactly one predecessor is kept: no .2 file ever appears.
    assert!(!dir.join("slow.jsonl.2").exists());

    let _ = std::fs::remove_dir_all(&dir);
}
