//! T5/A1 — encoder inference throughput and one contrastive training step.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::training::clip_features_tensor;
use sketchql_bench::harness::Harness;
use sketchql_bench::{bench_clip, bench_model};
use sketchql_nn::{nt_xent, Graph};
use std::hint::black_box;

fn bench_encoder(h: &mut Harness) {
    let model = bench_model();
    let clip = bench_clip(5);
    let steps = model.config.encoder.steps;
    let feats = clip_features_tensor(&clip, steps).unwrap();

    h.bench("encoder_embed", |b| {
        b.iter(|| black_box(model.encoder.embed(&model.store, black_box(&feats))))
    });

    h.bench("feature_extraction", |b| {
        b.iter(|| black_box(clip_features_tensor(black_box(&clip), steps)))
    });

    // Batched inference: 64 sequences stacked through one tape-free
    // forward (the matcher's cached-scan path). Compare per-item cost
    // against `encoder_embed` × 64.
    let feats64: Vec<_> = (0..64).map(|_| feats.clone()).collect();
    let refs64: Vec<&sketchql_nn::Tensor> = feats64.iter().collect();
    h.bench("encoder_embed_batch64", |b| {
        b.iter(|| black_box(model.encoder.embed_batch(&model.store, black_box(&refs64))))
    });

    // One full forward+backward step over a batch of 8 pairs (isolates
    // the autograd cost from data generation).
    let mut rng = StdRng::seed_from_u64(9);
    let feats_batch: Vec<_> = (0..16)
        .map(|_| sketchql_nn::Tensor::xavier(steps, feats.cols, &mut rng))
        .collect();
    let mut group = h.group("training_step");
    group.sample_size(10);
    group.bench("forward_backward_b8", |b| {
        b.iter(|| {
            let mut g = Graph::new(&model.store);
            let mut anchors = Vec::new();
            let mut positives = Vec::new();
            for pair in feats_batch.chunks(2) {
                let a = g.input(pair[0].clone());
                let p = g.input(pair[1].clone());
                anchors.push(model.encoder.forward(&mut g, a));
                positives.push(model.encoder.forward(&mut g, p));
            }
            let loss = nt_xent(&mut g, &anchors, &positives, 0.1);
            black_box(g.grads_by_name(loss))
        })
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_encoder(&mut h);
}
