//! Simulated agents: an object class plus a physical 3D body.
//!
//! The simulator animates rigid cuboids on the ground plane; an agent's
//! cuboid dimensions and typical speed come from per-class priors (a car is
//! ~4.5 m long and drives ~8 m/s; a person is ~0.5 m wide and walks
//! ~1.4 m/s). Randomizing around the priors is what makes two "left turn"
//! clips geometrically different while remaining semantically alike.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_trajectory::{ObjectClass, Point3};

use crate::motion::AgentPose;

/// Physical dimensions of an agent's cuboid body (meters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyDims {
    /// Extent along the heading direction.
    pub length: f32,
    /// Extent perpendicular to the heading.
    pub width: f32,
    /// Vertical extent.
    pub height: f32,
}

/// Per-class physical priors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassPriors {
    /// Mean cuboid dimensions.
    pub dims: BodyDims,
    /// Typical speed in meters/second.
    pub speed_mps: f32,
}

/// Returns the physical priors for a class. Classes without a strong prior
/// (chairs, bottles, ...) get a generic ~person-sized body and low speed.
pub fn class_priors(class: ObjectClass) -> ClassPriors {
    let (l, w, h, v) = match class {
        ObjectClass::Car => (4.5, 1.8, 1.5, 8.0),
        ObjectClass::Truck => (8.0, 2.5, 3.2, 7.0),
        ObjectClass::Bus => (12.0, 2.5, 3.2, 6.5),
        ObjectClass::Motorcycle => (2.2, 0.8, 1.4, 9.0),
        ObjectClass::Bicycle => (1.8, 0.6, 1.6, 4.5),
        ObjectClass::Person => (0.5, 0.5, 1.75, 1.4),
        ObjectClass::Dog => (0.9, 0.3, 0.6, 2.5),
        ObjectClass::Cat => (0.5, 0.2, 0.3, 2.0),
        ObjectClass::Horse => (2.4, 0.6, 1.6, 5.0),
        ObjectClass::Bird => (0.3, 0.3, 0.3, 6.0),
        ObjectClass::Boat => (6.0, 2.2, 2.0, 5.0),
        ObjectClass::Train => (25.0, 3.0, 4.0, 15.0),
        ObjectClass::Skateboard => (0.8, 0.25, 0.15, 4.0),
        _ => (0.6, 0.6, 1.2, 1.0),
    };
    ClassPriors {
        dims: BodyDims {
            length: l,
            width: w,
            height: h,
        },
        speed_mps: v,
    }
}

/// A simulated agent: class + sampled body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    /// The agent's object class.
    pub class: ObjectClass,
    /// The agent's sampled cuboid body.
    pub dims: BodyDims,
}

impl Agent {
    /// An agent with the class's mean dimensions.
    pub fn with_priors(class: ObjectClass) -> Self {
        Agent {
            class,
            dims: class_priors(class).dims,
        }
    }

    /// Samples an agent with dimensions jittered ±20% around the priors.
    pub fn sample<R: Rng>(class: ObjectClass, rng: &mut R) -> Self {
        let p = class_priors(class).dims;
        let j = |rng: &mut R, v: f32| v * rng.gen_range(0.8..1.2);
        Agent {
            class,
            dims: BodyDims {
                length: j(rng, p.length),
                width: j(rng, p.width),
                height: j(rng, p.height),
            },
        }
    }

    /// The 8 world-space corners of the agent's cuboid at a pose. The body
    /// sits on the ground plane (bottom at `z = 0`).
    pub fn corners(&self, pose: &AgentPose) -> [Point3; 8] {
        let (s, c) = pose.heading.sin_cos();
        let hl = self.dims.length * 0.5;
        let hw = self.dims.width * 0.5;
        let mut out = [Point3::ZERO; 8];
        let mut i = 0;
        for &dl in &[-hl, hl] {
            for &dw in &[-hw, hw] {
                for &z in &[0.0, self.dims.height] {
                    // Rotate the body-frame offset (dl along heading, dw
                    // perpendicular) into the world frame.
                    let x = pose.position.x + dl * c - dw * s;
                    let y = pose.position.y + dl * s + dw * c;
                    out[i] = Point3::new(x, y, z);
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_trajectory::Point2;

    #[test]
    fn priors_are_sane() {
        let car = class_priors(ObjectClass::Car);
        let person = class_priors(ObjectClass::Person);
        assert!(car.dims.length > person.dims.length);
        assert!(car.speed_mps > person.speed_mps);
        assert!(person.dims.height > person.dims.width);
    }

    #[test]
    fn unknown_classes_get_generic_body() {
        let p = class_priors(ObjectClass::Chair);
        assert!(p.dims.length > 0.0 && p.speed_mps > 0.0);
    }

    #[test]
    fn sampled_dims_within_jitter() {
        let mut rng = StdRng::seed_from_u64(1);
        let prior = class_priors(ObjectClass::Car).dims;
        for _ in 0..50 {
            let a = Agent::sample(ObjectClass::Car, &mut rng);
            assert!(a.dims.length >= prior.length * 0.8 && a.dims.length <= prior.length * 1.2);
        }
    }

    #[test]
    fn corners_form_correct_cuboid() {
        let a = Agent::with_priors(ObjectClass::Car);
        let pose = AgentPose {
            position: Point2::new(10.0, 5.0),
            heading: 0.0,
            speed: 0.0,
        };
        let cs = a.corners(&pose);
        // Heading 0: x spans length, y spans width, z spans height.
        let min_x = cs.iter().map(|p| p.x).fold(f32::INFINITY, f32::min);
        let max_x = cs.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max);
        assert!((max_x - min_x - a.dims.length).abs() < 1e-5);
        let min_z = cs.iter().map(|p| p.z).fold(f32::INFINITY, f32::min);
        let max_z = cs.iter().map(|p| p.z).fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(min_z, 0.0);
        assert!((max_z - a.dims.height).abs() < 1e-5);
    }

    #[test]
    fn corners_rotate_with_heading() {
        let a = Agent::with_priors(ObjectClass::Car);
        let pose = AgentPose {
            position: Point2::ZERO,
            heading: std::f32::consts::FRAC_PI_2,
            speed: 0.0,
        };
        let cs = a.corners(&pose);
        // Heading +90°: length now spans y.
        let min_y = cs.iter().map(|p| p.y).fold(f32::INFINITY, f32::min);
        let max_y = cs.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max);
        assert!((max_y - min_y - a.dims.length).abs() < 1e-4);
    }
}
