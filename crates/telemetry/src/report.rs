//! Per-query reporting: a [`Recorder`] brackets one `run_query` and
//! produces a [`QueryReport`] from counter deltas and top-level spans.

#[cfg(feature = "enabled")]
use crate::metrics::counter;
use crate::names;
#[cfg(feature = "enabled")]
use crate::span::take_finished_spans;
use crate::span::SpanRecord;
#[cfg(feature = "enabled")]
use crate::trace::{TraceContext, TraceGuard};

#[cfg(feature = "enabled")]
use std::time::Instant;

/// The pipeline counters a [`Recorder`] tracks, in report order.
#[cfg(feature = "enabled")]
const REPORT_COUNTERS: &[&str] = &[
    names::FRAMES_PREPROCESSED,
    names::TRACKS_BUILT,
    names::WINDOWS_ENUMERATED,
    names::WINDOWS_PRUNED,
    names::EMBEDDINGS_COMPUTED,
    names::EMBED_CACHE_HITS,
    names::EMBED_CACHE_MISSES,
    names::SIMILARITY_EVALS,
    names::TOPK_HEAP_OPS,
    names::STORE_HITS,
    names::STORE_FALLBACKS,
    names::STORE_PROBED,
];

/// Everything observed about one query run.
///
/// Counters are deltas over the bracketed region, so concurrent queries
/// on other sessions of the same process can inflate each other's
/// numbers; SketchQL sessions run queries serially, where the deltas are
/// exact. Spans, in contrast, are exact even under concurrency: each
/// recorder collects them through its own
/// [`TraceContext`](crate::TraceContext), so parallel queries cannot
/// steal each other's spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReport {
    /// Label for the run, usually `<dataset>/<query>`.
    pub label: String,
    /// The trace id the run was recorded under (0 when telemetry is
    /// compiled out). The same trace is retained in the flight
    /// recorder.
    pub trace_id: u64,
    /// Frames run through detection + preprocessing while building
    /// indexes inside the bracketed region (0 for pre-built indexes).
    pub frames_preprocessed: u64,
    /// Tracks materialized inside the bracketed region.
    pub tracks_built: u64,
    /// Candidate windows enumerated across all scales.
    pub windows_enumerated: u64,
    /// Windows discarded before scoring (no eligible tracks).
    pub windows_pruned: u64,
    /// Clip embeddings computed by the learned encoder.
    pub embeddings_computed: u64,
    /// Candidate segments served from the per-search embedding cache.
    pub embed_cache_hits: u64,
    /// Distinct candidate segments the embedding cache had to embed.
    pub embed_cache_misses: u64,
    /// Similarity evaluations (query vs. candidate combination).
    pub similarity_evals: u64,
    /// Pushes into the candidate ranking structure.
    pub topk_heap_ops: u64,
    /// Queries answered from a persistent embedding store.
    pub store_hits: u64,
    /// Queries that had a store available but fell back to the full scan.
    pub store_fallbacks: u64,
    /// Store rows probed and exactly re-ranked.
    pub store_probed: u64,
    /// Completed spans, completion order (children precede parents).
    pub spans: Vec<SpanRecord>,
    /// Total wall time of the bracketed region, nanoseconds.
    pub total_nanos: u64,
    /// Heap bytes attributed to the query's trace (all threads that
    /// entered it). 0 when telemetry is compiled out.
    pub alloc_bytes: u64,
    /// Heap allocations attributed to the query's trace.
    pub alloc_count: u64,
    /// CPU nanoseconds attributed to the query's trace (wall-clock
    /// upper bound on platforms without a thread CPU clock).
    pub cpu_nanos: u64,
}

impl QueryReport {
    /// Per-stage wall times: the depth-0 spans, in completion order.
    pub fn stages(&self) -> Vec<(&'static str, u64)> {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.name, s.nanos))
            .collect()
    }

    /// Wall-clock nanoseconds covered by the depth-0 spans: the length
    /// of the *union* of their intervals, not the plain sum. Nested or
    /// overlapping top-level spans (a fused batch delivers the shared
    /// scan to several traces; concurrent threads can both be at depth
    /// 0) therefore never push stage coverage past 100% of
    /// [`total_nanos`](Self::total_nanos). For a fully instrumented
    /// query this lands within a few percent of the total.
    pub fn stage_nanos_sum(&self) -> u64 {
        let mut intervals: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.start_nanos, s.start_nanos.saturating_add(s.nanos)))
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = 0u64;
        for (start, end) in intervals {
            let start = start.max(cursor);
            if end > start {
                covered += end - start;
                cursor = end;
            }
        }
        covered
    }

    /// The counters as `(metric name, value)` pairs, report order.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            (names::FRAMES_PREPROCESSED, self.frames_preprocessed),
            (names::TRACKS_BUILT, self.tracks_built),
            (names::WINDOWS_ENUMERATED, self.windows_enumerated),
            (names::WINDOWS_PRUNED, self.windows_pruned),
            (names::EMBEDDINGS_COMPUTED, self.embeddings_computed),
            (names::EMBED_CACHE_HITS, self.embed_cache_hits),
            (names::EMBED_CACHE_MISSES, self.embed_cache_misses),
            (names::SIMILARITY_EVALS, self.similarity_evals),
            (names::TOPK_HEAP_OPS, self.topk_heap_ops),
            (names::STORE_HITS, self.store_hits),
            (names::STORE_FALLBACKS, self.store_fallbacks),
            (names::STORE_PROBED, self.store_probed),
        ]
    }

    /// Fraction of candidate-segment lookups served from the per-search
    /// embedding cache, or `None` when the query never consulted it
    /// (classical similarity, or the cache disabled).
    pub fn embed_cache_hit_rate(&self) -> Option<f64> {
        let total = self.embed_cache_hits + self.embed_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.embed_cache_hits as f64 / total as f64)
        }
    }
}

/// Brackets one query: snapshots the pipeline counters at
/// [`Recorder::begin`], and turns deltas + spans into a [`QueryReport`]
/// at [`Recorder::finish`].
///
/// Each recorder owns a [`TraceContext`](crate::TraceContext) it enters
/// for the duration of the bracket, so spans completed on this thread
/// belong to this recorder alone — concurrent recorders on other
/// threads cannot steal them. The finished trace is also published to
/// the flight recorder under [`QueryReport::trace_id`]. Not `Send`: a
/// recorder must finish on the thread that began it.
pub struct Recorder {
    #[cfg(feature = "enabled")]
    start: Instant,
    #[cfg(feature = "enabled")]
    base: Vec<u64>,
    #[cfg(feature = "enabled")]
    ctx: TraceContext,
    #[cfg(feature = "enabled")]
    guard: TraceGuard,
    #[cfg(not(feature = "enabled"))]
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Recorder {
    /// Starts recording under a freshly minted trace id. Drains any
    /// stale finished spans on this thread so pre-bracket leftovers
    /// cannot bleed into later reports.
    pub fn begin() -> Self {
        #[cfg(feature = "enabled")]
        {
            Self::begin_with_trace(TraceContext::new())
        }
        #[cfg(not(feature = "enabled"))]
        {
            Recorder {
                _not_send: std::marker::PhantomData,
            }
        }
    }

    /// Starts recording into an existing trace (one whose id arrived
    /// over the wire, for instance).
    #[cfg(feature = "enabled")]
    pub fn begin_with_trace(ctx: TraceContext) -> Self {
        let _ = take_finished_spans();
        let guard = ctx.enter();
        Recorder {
            start: Instant::now(),
            base: REPORT_COUNTERS.iter().map(|n| counter(n).get()).collect(),
            ctx,
            guard,
        }
    }

    /// Stops recording and builds the report. When telemetry is disabled
    /// this returns a default (all-zero) report carrying only the label.
    pub fn finish(self, label: impl Into<String>) -> QueryReport {
        #[cfg(feature = "enabled")]
        {
            let Recorder {
                start,
                base,
                ctx,
                guard,
            } = self;
            drop(guard); // stop collecting before snapshotting
            let deltas: Vec<u64> = REPORT_COUNTERS
                .iter()
                .zip(&base)
                .map(|(n, base)| counter(n).get().saturating_sub(*base))
                .collect();
            let label = label.into();
            ctx.set_label(label.clone());
            // The guard dropped above already attributed this thread's
            // alloc/CPU deltas into the trace; finalize snapshots them.
            let (spans, alloc_bytes, alloc_count, cpu_nanos) = match ctx.finalize() {
                Some(trace) => (
                    trace.spans.clone(),
                    trace.alloc_bytes,
                    trace.alloc_count,
                    trace.cpu_nanos,
                ),
                None => (Vec::new(), 0, 0, 0),
            };
            QueryReport {
                label,
                trace_id: ctx.id(),
                frames_preprocessed: deltas[0],
                tracks_built: deltas[1],
                windows_enumerated: deltas[2],
                windows_pruned: deltas[3],
                embeddings_computed: deltas[4],
                embed_cache_hits: deltas[5],
                embed_cache_misses: deltas[6],
                similarity_evals: deltas[7],
                topk_heap_ops: deltas[8],
                store_hits: deltas[9],
                store_fallbacks: deltas[10],
                store_probed: deltas[11],
                spans,
                total_nanos: start.elapsed().as_nanos() as u64,
                alloc_bytes,
                alloc_count,
                cpu_nanos,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            QueryReport {
                label: label.into(),
                ..QueryReport::default()
            }
        }
    }
}
