//! Per-thread CPU-time accounting without the `libc` crate.
//!
//! Two sources, in preference order:
//!
//! 1. `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` for the *calling* thread
//!    — nanosecond resolution, one syscall (often a vDSO call). `std`
//!    already links the C library on unix targets, so a direct
//!    `extern "C"` declaration costs no new dependency.
//! 2. `/proc/self/task/<tid>/stat` for *other* threads (the sampling
//!    profiler's watchdog reads every worker's utime+stime) — clock-tick
//!    resolution (10 ms at the universal `USER_HZ = 100`), which is fine
//!    for deltas accumulated over a sampling window.
//!
//! On platforms with neither, everything degrades to a documented
//! wall-clock fallback: [`CpuStamp`] falls back to `Instant`, so
//! attribution still produces a number (an upper bound — wall time of
//! the scope) instead of zero.

use std::time::Instant;

#[cfg(all(feature = "enabled", any(target_os = "linux", target_os = "android")))]
mod imp {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    // Linux's CLOCK_THREAD_CPUTIME_ID; std links libc, so the symbol is
    // already there — no external crate needed.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    pub fn thread_cpu_nanos() -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            Some((ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64)
        } else {
            None
        }
    }

    pub fn current_tid() -> u64 {
        // /proc/thread-self is a symlink to <pid>/task/<tid>.
        std::fs::read_link("/proc/thread-self")
            .ok()
            .and_then(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(0)
    }

    pub fn tid_cpu_nanos(tid: u64) -> Option<u64> {
        let stat = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).ok()?;
        // Fields after the parenthesized comm (which may itself contain
        // spaces or parens): state is overall field 3, utime 14, stime 15.
        let rest = stat.rsplit_once(')')?.1;
        let mut fields = rest.split_whitespace();
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        // Ticks are USER_HZ, which is 100 on every Linux ABI regardless
        // of the kernel's internal HZ: 10 ms per tick.
        Some((utime + stime).saturating_mul(10_000_000))
    }
}

#[cfg(not(all(feature = "enabled", any(target_os = "linux", target_os = "android"))))]
mod imp {
    pub fn thread_cpu_nanos() -> Option<u64> {
        None
    }

    pub fn current_tid() -> u64 {
        0
    }

    pub fn tid_cpu_nanos(_tid: u64) -> Option<u64> {
        None
    }
}

/// CPU nanoseconds consumed by the calling thread so far, or `None`
/// when no thread CPU clock is available on this platform.
pub fn thread_cpu_nanos() -> Option<u64> {
    imp::thread_cpu_nanos()
}

/// The calling thread's kernel task id, or 0 when unknown (non-Linux).
pub fn current_tid() -> u64 {
    imp::current_tid()
}

/// CPU nanoseconds consumed by thread `tid` of this process (utime +
/// stime from `/proc/self/task/<tid>/stat`, 10 ms granularity), or
/// `None` if the thread is gone or the platform has no procfs.
pub fn tid_cpu_nanos(tid: u64) -> Option<u64> {
    if tid == 0 {
        return None;
    }
    imp::tid_cpu_nanos(tid)
}

/// A point-in-time CPU reading for the calling thread, used by
/// attribution scopes: take one at scope entry, measure the delta at
/// scope exit with [`nanos_since`]. Falls back to wall clock where no
/// thread CPU clock exists, so the delta is then an upper bound.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) enum CpuStamp {
    Cpu(u64),
    Wall(Instant),
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn stamp() -> CpuStamp {
    match thread_cpu_nanos() {
        Some(ns) => CpuStamp::Cpu(ns),
        None => CpuStamp::Wall(Instant::now()),
    }
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn nanos_since(stamp: &CpuStamp) -> u64 {
    match stamp {
        CpuStamp::Cpu(base) => thread_cpu_nanos().unwrap_or(*base).saturating_sub(*base),
        CpuStamp::Wall(start) => start.elapsed().as_nanos() as u64,
    }
}
