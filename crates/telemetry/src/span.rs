//! RAII span timers with hierarchical nesting.
//!
//! [`span`] starts a timer on the current thread and bumps the thread's
//! nesting depth; dropping the returned [`SpanGuard`] records a
//! [`SpanRecord`] with the span's depth relative to its enclosing spans.
//!
//! Completed spans are delivered to every [`TraceContext`] the current
//! thread has entered (see [`TraceContext::enter`]); when no trace is
//! active they accumulate per thread until [`take_finished_spans`]
//! drains them, which keeps span collection working for callers that
//! never mint a trace.
//!
//! Durations come from [`std::time::Instant`], the monotonic clock, so
//! they are immune to wall-clock adjustments. Span start times are
//! stored as offsets from a per-process epoch (the first telemetry
//! event), which lets reports reassemble a waterfall without shipping
//! `Instant`s around.
//!
//! [`TraceContext`]: crate::TraceContext
//! [`TraceContext::enter`]: crate::TraceContext::enter

#[cfg(feature = "enabled")]
use std::cell::RefCell;
#[cfg(feature = "enabled")]
use std::sync::OnceLock;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// One completed span on the thread that created it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `sketchql.matcher.search`.
    pub name: &'static str,
    /// Nesting depth when the span ran: 0 for top-level spans, 1 for
    /// spans opened inside a depth-0 span, and so on.
    pub depth: usize,
    /// When the span started, nanoseconds since the process telemetry
    /// epoch. Only ordering and differences are meaningful.
    pub start_nanos: u64,
    /// Elapsed monotonic time in nanoseconds.
    pub nanos: u64,
}

#[cfg(feature = "enabled")]
struct ThreadSpans {
    depth: usize,
    finished: Vec<SpanRecord>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static SPANS: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans { depth: 0, finished: Vec::new() })
    };
}

/// The per-process telemetry epoch: fixed at the first telemetry event.
#[cfg(feature = "enabled")]
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds between the process epoch and `at` (0 if `at` precedes
/// the epoch, which can only happen for the instant that seeded it).
#[cfg(feature = "enabled")]
pub(crate) fn nanos_since_epoch(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_nanos() as u64
}

/// Live span; records itself when dropped.
///
/// Guards must drop in reverse creation order (normal lexical scoping)
/// for depths to nest correctly — the usual RAII pattern:
///
/// ```
/// let _outer = sketchql_telemetry::span("sketchql.matcher.search");
/// {
///     let _inner = sketchql_telemetry::span("sketchql.matcher.prepare");
///     // ... timed work ...
/// } // _inner records at depth 1
/// // _outer records at depth 0 when it goes out of scope
/// ```
#[must_use = "a span measures the scope holding its guard; binding it to _ drops it immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: Instant,
}

/// Opens a span on the current thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        epoch(); // pin the epoch no later than the first span
        SPANS.with(|s| s.borrow_mut().depth += 1);
        // Publish the name on this thread's profiler stack so the
        // sampling profiler can fold it; popped when the guard drops.
        crate::profiler::push_span(name);
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            crate::profiler::pop_span();
            let nanos = self.start.elapsed().as_nanos() as u64;
            let start_nanos = nanos_since_epoch(self.start);
            let depth = SPANS.with(|s| {
                let mut s = s.borrow_mut();
                s.depth = s.depth.saturating_sub(1);
                s.depth
            });
            let record = SpanRecord {
                name: self.name,
                depth,
                start_nanos,
                nanos,
            };
            // Deliver to the traces this thread has entered; fall back
            // to the legacy per-thread buffer when none are active.
            if let Some(record) = crate::trace::deliver(record) {
                SPANS.with(|s| s.borrow_mut().finished.push(record));
            }
        }
    }
}

/// Drains the current thread's finished spans, in completion order
/// (children precede their parents). Spans completed while a
/// [`TraceContext`](crate::TraceContext) was entered on this thread are
/// owned by that trace and never show up here. Empty when telemetry is
/// disabled.
pub fn take_finished_spans() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        SPANS.with(|s| std::mem::take(&mut s.borrow_mut().finished))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}
