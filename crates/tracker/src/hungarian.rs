//! Kuhn–Munkres (Hungarian) assignment.
//!
//! ByteTrack associates detections to tracks by solving a min-cost bipartite
//! assignment over an IoU-based cost matrix. This is the standard O(n³)
//! potentials-based implementation, generalized to rectangular matrices by
//! padding, with a post-filter that discards pairings above a cost
//! threshold (non-assignments).

// Index arithmetic is clearer than iterator adapters in this kernel.
#![allow(clippy::needless_range_loop)]

/// Solves min-cost assignment on a `rows x cols` cost matrix.
///
/// Returns `(pairs, unmatched_rows, unmatched_cols)`, where `pairs` holds
/// `(row, col)` assignments whose cost is at most `max_cost`. Rows/columns
/// only matched to padding, or matched above `max_cost`, are reported
/// unmatched.
pub fn assign(cost: &[Vec<f32>], max_cost: f32) -> (Vec<(usize, usize)>, Vec<usize>, Vec<usize>) {
    let rows = cost.len();
    let cols = cost.first().map_or(0, Vec::len);
    if rows == 0 || cols == 0 {
        return (Vec::new(), (0..rows).collect(), (0..cols).collect());
    }
    let n = rows.max(cols);
    // Large-but-finite padding cost keeps arithmetic sane.
    let pad: f32 = {
        let max_entry = cost
            .iter()
            .flatten()
            .copied()
            .filter(|c| c.is_finite())
            .fold(0.0f32, f32::max);
        max_entry * (n as f32 + 1.0) + 1.0e3
    };
    let at = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            let c = cost[i][j];
            if c.is_finite() {
                c as f64
            } else {
                pad as f64 * 2.0
            }
        } else {
            pad as f64
        }
    };

    // Potentials-based Hungarian algorithm (1-indexed internals).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = at(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::new();
    let mut row_matched = vec![false; rows];
    let mut col_matched = vec![false; cols];
    for j in 1..=n {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (r, c) = (i - 1, j - 1);
        if r < rows && c < cols && cost[r][c].is_finite() && cost[r][c] <= max_cost {
            pairs.push((r, c));
            row_matched[r] = true;
            col_matched[c] = true;
        }
    }
    pairs.sort_unstable();
    let unmatched_rows = (0..rows).filter(|&r| !row_matched[r]).collect();
    let unmatched_cols = (0..cols).filter(|&c| !col_matched[c]).collect();
    (pairs, unmatched_rows, unmatched_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_cost(cost: &[Vec<f32>], pairs: &[(usize, usize)]) -> f32 {
        pairs.iter().map(|&(r, c)| cost[r][c]).sum()
    }

    #[test]
    fn square_identity_assignment() {
        let cost = vec![
            vec![1.0, 10.0, 10.0],
            vec![10.0, 1.0, 10.0],
            vec![10.0, 10.0, 1.0],
        ];
        let (pairs, ur, uc) = assign(&cost, f32::INFINITY);
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
        assert!(ur.is_empty());
        assert!(uc.is_empty());
    }

    #[test]
    fn finds_global_optimum_not_greedy() {
        // Greedy would pick (0,0)=1 then be forced to (1,1)=100 → 101.
        // Optimal is (0,1)=2 + (1,0)=2 → 4.
        let cost = vec![vec![1.0, 2.0], vec![2.0, 100.0]];
        let (pairs, _, _) = assign(&cost, f32::INFINITY);
        assert_eq!(total_cost(&cost, &pairs), 4.0);
    }

    #[test]
    fn rectangular_more_rows() {
        let cost = vec![vec![5.0, 1.0], vec![1.0, 5.0], vec![2.0, 2.0]];
        let (pairs, ur, uc) = assign(&cost, f32::INFINITY);
        assert_eq!(pairs.len(), 2);
        assert_eq!(ur.len(), 1);
        assert!(uc.is_empty());
        assert_eq!(total_cost(&cost, &pairs), 2.0);
    }

    #[test]
    fn rectangular_more_cols() {
        let cost = vec![vec![3.0, 1.0, 2.0]];
        let (pairs, ur, uc) = assign(&cost, f32::INFINITY);
        assert_eq!(pairs, vec![(0, 1)]);
        assert!(ur.is_empty());
        assert_eq!(uc, vec![0, 2]);
    }

    #[test]
    fn max_cost_filters_bad_pairs() {
        let cost = vec![vec![0.2, 9.0], vec![9.0, 8.0]];
        let (pairs, ur, uc) = assign(&cost, 1.0);
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(ur, vec![1]);
        assert_eq!(uc, vec![1]);
    }

    #[test]
    fn empty_inputs() {
        let (pairs, ur, uc) = assign(&[], f32::INFINITY);
        assert!(pairs.is_empty() && ur.is_empty() && uc.is_empty());
        let cost: Vec<Vec<f32>> = vec![vec![]];
        let (pairs, ur, uc) = assign(&cost, f32::INFINITY);
        assert!(pairs.is_empty());
        assert_eq!(ur, vec![0]);
        assert!(uc.is_empty());
    }

    #[test]
    fn infinite_costs_are_never_assigned() {
        let cost = vec![vec![f32::INFINITY, 1.0], vec![1.0, f32::INFINITY]];
        let (pairs, _, _) = assign(&cost, f32::INFINITY);
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
        // Fully infeasible row:
        let cost = vec![vec![f32::INFINITY], vec![0.5]];
        let (pairs, ur, _) = assign(&cost, 10.0);
        assert_eq!(pairs, vec![(1, 0)]);
        assert_eq!(ur, vec![0]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..=5);
            let cost: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0f32)).collect())
                .collect();
            let (pairs, _, _) = assign(&cost, f32::INFINITY);
            let ours = total_cost(&cost, &pairs);
            // Brute force over permutations.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut best = f32::INFINITY;
            permute(&mut perm, 0, &mut |p| {
                let c: f32 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
                if c < best {
                    best = c;
                }
            });
            assert!(
                (ours - best).abs() < 1e-3,
                "hungarian {ours} vs brute {best}"
            );
        }
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}
