//! Shard-tier format properties: manifest JSON round trips losslessly
//! (bit-exact floats, full-range u64 fingerprints), shard files round
//! trip through the memory-mapped loader, and any truncation of a
//! shard file is rejected at open.

use proptest::prelude::*;
use sketchql_store::{
    hex_u64, LoadedShard, Manifest, ManifestShard, ShardData, StoreError, StoreRow,
    MANIFEST_VERSION,
};
use sketchql_trajectory::ObjectClass;
use std::path::PathBuf;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "skql-shardfmt-{tag}-{}-{case}.bin",
        std::process::id()
    ))
}

/// An arbitrary manifest whose scalar fields sweep the full value
/// ranges JSON is worst at: u64 fingerprints above 2^53 (stored as
/// hex) and arbitrary f32 bit patterns (stored as bit patterns).
fn arb_manifest() -> impl Strategy<Value = Manifest> {
    // Per-shard (frame width, rows, checksum); coverage is built
    // contiguously from 0 because `validate` demands a gap-free
    // partition of the frame axis.
    let shard = (1u32..2000, 0u32..1000, any::<u64>());
    (
        (
            prop::collection::vec(b'a'..=b'z', 0..10),
            any::<u64>(),
            any::<u64>(),
            // Epochs count manifest commits one by one, so they stay
            // far below the 2^53 integer ceiling of their JSON float.
            0u64..1_000_000,
        ),
        (
            prop::collection::vec(any::<u32>(), 5),
            prop::collection::vec(1u32..500, 1..4),
            1u32..5,
            prop::collection::vec(any::<u32>(), 0..8),
            prop::collection::vec(shard, 1..4),
        ),
    )
        .prop_map(
            |((name, model_fp, index_fp, epoch), (bits, lens, dim, centroids, shards))| {
                let nlist = (centroids.len() / dim as usize).max(1) as u32;
                let centroid_bits: Vec<u32> = if centroids.is_empty() {
                    vec![0; (nlist * dim) as usize]
                } else {
                    centroids
                        .iter()
                        .cycle()
                        .take((nlist * dim) as usize)
                        .copied()
                        .collect()
                };
                let shard_frames = shards.iter().map(|&(w, _, _)| w).max().unwrap_or(1);
                let mut next_start = 0u32;
                let shards: Vec<ManifestShard> = shards
                    .into_iter()
                    .enumerate()
                    .map(|(i, (width, rows, checksum))| {
                        let frame_start = next_start;
                        let frame_end = frame_start + width - 1;
                        next_start = frame_end + 1;
                        ManifestShard {
                            file: format!("shard-{i:04}.skshard"),
                            shard_id: i as u32,
                            frame_start,
                            frame_end,
                            rows,
                            checksum: hex_u64(checksum),
                            list_rows: {
                                let mut l = vec![0u32; nlist as usize];
                                l[0] = rows;
                                l
                            },
                        }
                    })
                    .collect();
                Manifest {
                    version: MANIFEST_VERSION,
                    epoch,
                    dataset: String::from_utf8(name).unwrap(),
                    model_fingerprint: hex_u64(model_fp),
                    index_fingerprint: hex_u64(index_fp),
                    frames: next_start,
                    fps_bits: bits[0],
                    frame_width_bits: bits[1],
                    frame_height_bits: bits[2],
                    stride_frac_bits: bits[3],
                    min_overlap_frac_bits: bits[4],
                    window_lens: lens,
                    dim,
                    shard_frames,
                    nlist,
                    centroid_bits,
                    shards,
                }
            },
        )
}

/// An arbitrary shard: random rows, vectors with hostile float bit
/// patterns, and a posting-list partition of the rows.
fn arb_shard() -> impl Strategy<Value = ShardData> {
    let row = (any::<u64>(), any::<u8>(), 0u32..500, 0u32..100);
    (
        prop::collection::vec(row, 0..12),
        prop::collection::vec(-1.0e3f32..1.0e3, 3),
        1usize..4,
    )
        .prop_map(|(rows, seed, nlist)| {
            let dim = 3;
            let n = rows.len();
            let rows: Vec<StoreRow> = rows
                .into_iter()
                .map(|(id, class_pick, start, span)| StoreRow {
                    track_id: id,
                    class: if class_pick == 0 {
                        ObjectClass::Any
                    } else {
                        ObjectClass::CONCRETE[class_pick as usize % ObjectClass::CONCRETE.len()]
                    },
                    start,
                    end: start + span,
                })
                .collect();
            let mut vectors = Vec::with_capacity(n * dim);
            for r in 0..n {
                vectors.push(-0.0);
                vectors.push(f32::MIN_POSITIVE / 2.0); // subnormal
                vectors.push(seed[r % seed.len()]);
            }
            let mut lists = vec![Vec::new(); nlist];
            for r in 0..n {
                lists[r % nlist].push(r as u32);
            }
            ShardData {
                shard_id: 7,
                frame_start: 0,
                frame_end: 599,
                dim,
                rows,
                vectors,
                lists,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Manifest → JSON → manifest is the identity, bit for bit: hex
    /// fingerprints survive above 2^53 and float bit patterns (NaN
    /// payloads included) survive the text round trip.
    #[test]
    fn manifest_round_trips_through_json(manifest in arb_manifest()) {
        let json = manifest.to_json();
        let back = Manifest::from_json(std::path::Path::new("prop.json"), &json)
            .expect("serialized manifest must parse");
        prop_assert_eq!(&back, &manifest);
        // And the round trip is a fixed point: re-serializing yields
        // the same document.
        prop_assert_eq!(back.to_json(), json);
    }

    /// Shard save → mmap open reproduces every row, vector bit, and
    /// posting list exactly.
    #[test]
    fn shard_round_trips_through_disk(shard in arb_shard(), case in any::<u64>()) {
        let path = temp_path("rt", case);
        let checksum = shard.save(&path).expect("save shard");
        let loaded = LoadedShard::open(&path, Some(checksum)).expect("open shard");
        prop_assert_eq!(loaded.len(), shard.rows.len());
        for (i, row) in shard.rows.iter().enumerate() {
            prop_assert_eq!(&loaded.row(i), row);
            let dim = shard.dim;
            let want = &shard.vectors[i * dim..(i + 1) * dim];
            let got = loaded.vector(i);
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        for (c, list) in shard.lists.iter().enumerate() {
            prop_assert_eq!(loaded.list(c), &list[..]);
        }
        drop(loaded);
        std::fs::remove_file(&path).ok();
    }

    /// Every proper prefix of a shard file fails to open — truncation
    /// can never be read as a shorter valid shard.
    #[test]
    fn truncated_shard_is_rejected(shard in arb_shard(), frac in 0.0f64..1.0, case in any::<u64>()) {
        let path = temp_path("trunc", case);
        shard.save(&path).expect("save shard");
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize; // always < len
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = LoadedShard::open(&path, None).expect_err("truncated shard must not open");
        prop_assert!(matches!(
            err,
            StoreError::Truncated { .. } | StoreError::BadHeader { .. }
        ));
        std::fs::remove_file(&path).ok();
    }
}
