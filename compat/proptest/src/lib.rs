//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its test-suites use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / collection / `any`
//! strategies, `prop_oneof!`, and the `proptest!` / `prop_assert*!` /
//! `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: there is no
//! shrinking (a failing case reports its inputs via the assertion message
//! only), and `prop_assume!` skips the case rather than drawing a
//! replacement. Case generation is deterministic: each test derives its RNG
//! seed from the test's module path, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of type `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy` closely enough that helper
/// functions can be written as `fn arb_x() -> impl Strategy<Value = X>`.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the same value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`, as in `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Object-safe strategy facade backing [`OneOf`].
pub trait DynStrategy<V> {
    /// Draws one value through the trait object.
    fn dyn_generate(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Strategy built by [`prop_oneof!`]: picks one arm uniformly per case.
pub struct OneOf<V> {
    arms: Vec<Rc<dyn DynStrategy<V>>>,
}

impl<V> OneOf<V> {
    /// Builds from pre-erased arms; used by the `prop_oneof!` expansion.
    pub fn new(arms: Vec<Rc<dyn DynStrategy<V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    /// Erases one strategy arm; used by the `prop_oneof!` expansion.
    pub fn arm<S>(s: S) -> Rc<dyn DynStrategy<V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Rc::new(s)
    }
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].dyn_generate(rng)
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Lengths acceptable to [`vec`]: an exact size or a size range.
        pub trait VecLen: Clone {
            /// Picks the length for one generated vector.
            fn pick(&self, rng: &mut StdRng) -> usize;
        }

        impl VecLen for usize {
            fn pick(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl VecLen for Range<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl VecLen for RangeInclusive<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len)`: vectors of generated elements.
        pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for a fair coin flip.
        #[derive(Clone, Copy)]
        pub struct BoolStrategy;

        impl Strategy for BoolStrategy {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }

        /// `prop::bool::ANY`: either boolean, equiprobably.
        pub const ANY: BoolStrategy = BoolStrategy;
    }
}

/// Per-test configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives the deterministic RNG for a test from its full path (FNV-1a).
pub fn rng_for_test(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest case {} of {} failed: {}", case + 1, config.cases, msg);
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body; failure reports the offending case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Combines strategies: each case picks one arm uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::OneOf::arm($arm)),+])
    };
}

/// Everything a proptest file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(f32, f32),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0u32..1).prop_map(|_| Shape::Dot),
            (0.0f32..1.0, 2.0f32..3.0).prop_map(|(a, b)| Shape::Line(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 1u32..10, f in -1.0f32..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in prop::collection::vec(0u8..255, 3..7),
            exact in prop::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn oneof_hits_every_arm_eventually(shapes in prop::collection::vec(arb_shape(), 64)) {
            let dots = shapes.iter().filter(|s| **s == Shape::Dot).count();
            prop_assert!(dots > 0 && dots < shapes.len());
            for s in &shapes {
                if let Shape::Line(a, b) = s {
                    prop_assert!(*a < 1.0 && *b >= 2.0);
                }
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bool_any_flips_both_ways(flags in prop::collection::vec(prop::bool::ANY, 64)) {
            prop_assert!(flags.iter().any(|&b| b));
            prop_assert!(flags.iter().any(|&b| !b));
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use crate::Strategy;
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
