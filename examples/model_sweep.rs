//! Development sweep: compare training recipes on a retrieval-aligned
//! metric before committing to a default.
//!
//! Metric (`sketch-sep`): for each canonical sketch of four event kinds,
//! score six isolated single-object video clips of each kind and measure
//! the pairwise win rate of the matching kind (1.0 = the sketch always
//! ranks its own event above other events). This is the statistic that
//! drove `TrainingConfig::default()` — see DESIGN.md §4.5.
//!
//! ```text
//! cargo run --release --example model_sweep            # quick variants
//! cargo run --release --example model_sweep -- full    # includes the full recipe
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::training::{train, TrainingConfig};
use sketchql::Similarity;
use sketchql_datasets::{query_clip, EventKind};
use sketchql_simulator::{Camera, CameraRig, Scene3D, ShakeConfig};
use sketchql_trajectory::{Clip, Point2, Point3};

/// Records one isolated single-object clip of `kind` from a random camera.
fn event_clip(kind: EventKind, seed: u64) -> Clip {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene3D::new(30.0);
    for (agent, script) in kind.instantiate(Point2::ZERO, &mut rng) {
        scene = scene.with_object(agent, script);
    }
    loop {
        let cam = Camera::sample_around(Point3::ZERO, 30.0, 60.0, &mut rng);
        let mut rig = CameraRig::new(cam, ShakeConfig::default());
        let clip = scene.record(&mut rig, &mut rng);
        if clip.objects.iter().all(|t| t.len() >= 20) {
            return Clip::new(
                clip.frame_width,
                clip.frame_height,
                vec![clip.objects[0].clone()],
            );
        }
    }
}

/// Pairwise win rate of matching-kind clips under each kind's sketch.
fn sketch_sep(model: &sketchql::TrainedModel) -> f32 {
    let kinds = [
        EventKind::LeftTurn,
        EventKind::RightTurn,
        EventKind::UTurn,
        EventKind::StopAndGo,
    ];
    let sim = model.similarity();
    let mut wins = 0usize;
    let mut total = 0usize;
    for (qi, &qk) in kinds.iter().enumerate() {
        let q = query_clip(qk);
        let q = Clip::new(q.frame_width, q.frame_height, vec![q.objects[0].clone()]);
        let prep = sim.prepare(&q).expect("sketch queries embed");
        let scores: Vec<Vec<f32>> = kinds
            .iter()
            .map(|&ck| {
                (0..6u64)
                    .map(|r| sim.score(&prep, &event_clip(ck, 1000 + r * 17 + ck as u64 * 3)))
                    .collect()
            })
            .collect();
        for (ci, row) in scores.iter().enumerate() {
            if ci == qi {
                continue;
            }
            for &pos in &scores[qi] {
                for &neg in row {
                    total += 1;
                    if pos > neg {
                        wins += 1;
                    }
                }
            }
        }
    }
    wins as f32 / total as f32
}

fn main() {
    let include_full = std::env::args().any(|a| a == "full");
    let mut variants: Vec<(&str, TrainingConfig)> = vec![
        ("small (1200 steps)", TrainingConfig::small()),
        ("no sketchify", {
            let mut c = TrainingConfig::small();
            c.pairgen.sketchify_prob = 0.0;
            c
        }),
        ("no mirror negatives", {
            let mut c = TrainingConfig::small();
            c.mirror_negatives = false;
            c
        }),
        ("no padding", {
            let mut c = TrainingConfig::small();
            c.pairgen.pad_prob = 0.0;
            c
        }),
    ];
    if include_full {
        variants.push(("full (2500 steps)", TrainingConfig::default()));
    }

    println!(
        "{:<22} | {:>9} | {:>10} | {:>7}",
        "variant", "loss", "sketch-sep", "time"
    );
    println!("{}", "-".repeat(58));
    for (name, cfg) in variants {
        let t0 = std::time::Instant::now();
        let model = train(cfg);
        let n = model.loss_history.len();
        let loss_tail: f32 = model.loss_history[n - 20..].iter().sum::<f32>() / 20.0;
        let sep = sketch_sep(&model);
        println!(
            "{:<22} | {:>9.3} | {:>10.3} | {:>6.0}s",
            name,
            loss_tail,
            sep,
            t0.elapsed().as_secs_f64()
        );
    }
}
