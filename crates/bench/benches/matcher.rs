//! T5 — full query latency: sliding-window search over videos of
//! increasing length, learned similarity vs the DTW baseline.
//!
//! Doubles as the telemetry-overhead check: build once with default
//! features and once with `--no-default-features`, then compare the
//! `matcher_search/learned/*` medians (`scripts/bench_overhead.sh`
//! automates this; the acceptance bar is <2% overhead).

use sketchql::{
    ClassicalSimilarity, Matcher, MatcherConfig, MaterializeConfig, MaterializedWindows, VideoIndex,
};
use sketchql_bench::harness::Harness;
use sketchql_bench::{bench_model, bench_video};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_trajectory::DistanceKind;
use std::hint::black_box;

fn bench_matcher(h: &mut Harness) {
    let model = bench_model();
    let query = query_clip(EventKind::LeftTurn);

    let mut group = h.group("matcher_search");
    group.sample_size(10);
    for events_per_kind in [1usize, 2] {
        let video = bench_video(events_per_kind, 42);
        let idx = VideoIndex::from_truth(&video);
        group.bench(format!("learned/{}", idx.frames), |b| {
            let m = Matcher::new(model.similarity());
            b.iter(|| black_box(m.search(&idx, black_box(&query)).unwrap()))
        });
        group.bench(format!("dtw/{}", idx.frames), |b| {
            let m = Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw));
            b.iter(|| black_box(m.search(&idx, black_box(&query)).unwrap()))
        });
    }
    group.finish();

    // Per-search embedding cache + batched encoder forwards vs one tape
    // forward per candidate, on the same multi-scale learned scan
    // (`scripts/bench_matcher.sh` compares these two ids).
    let video = bench_video(1, 46);
    let idx = VideoIndex::from_truth(&video);
    let mut group = h.group("matcher_embed_cache");
    group.sample_size(10);
    group.bench("uncached", |b| {
        let m = Matcher::with_config(
            model.similarity(),
            MatcherConfig {
                embed_cache: false,
                ..Default::default()
            },
        );
        b.iter(|| black_box(m.search(&idx, black_box(&query)).unwrap()))
    });
    group.bench("cached", |b| {
        let m = Matcher::with_config(
            model.similarity(),
            MatcherConfig {
                embed_cache: true,
                ..Default::default()
            },
        );
        b.iter(|| black_box(m.search(&idx, black_box(&query)).unwrap()))
    });
    group.finish();

    // Materialized-window fast path: build once, query many times.
    let video = bench_video(1, 44);
    let idx1 = VideoIndex::from_truth(&video);
    let sim = model.similarity();
    let mat = MaterializedWindows::build(&idx1, &sim, MaterializeConfig::default());
    let mut group = h.group("matcher_materialized");
    group.bench("query_after_build", |b| {
        b.iter(|| black_box(mat.query(&sim, black_box(&query), 10, 0.45)))
    });
    group.finish();

    // Multi-object query (Q2): combinatorial candidate generation.
    let mut group = h.group("matcher_search_multiobject");
    group.sample_size(10);
    let video = bench_video(1, 43);
    let idx = VideoIndex::from_truth(&video);
    let q2 = query_clip(EventKind::PerpendicularCrossing);
    group.bench("learned_q2", |b| {
        let m = Matcher::new(model.similarity());
        b.iter(|| black_box(m.search(&idx, black_box(&q2)).unwrap()))
    });
    group.finish();
}

fn bench_rules(h: &mut Harness) {
    let video = bench_video(1, 45);
    let idx = VideoIndex::from_truth(&video);
    let rule = sketchql::expert_rule(sketchql_datasets::EventKind::LeftTurn);
    let cfg = sketchql::RuleSearchConfig::default();
    let mut group = h.group("rules_baseline");
    group.sample_size(20);
    group.bench("left_turn_rule_eval", |b| {
        b.iter(|| black_box(sketchql::evaluate_rule(&idx, &rule, &cfg)))
    });
    group.finish();
}

fn main() {
    println!(
        "# matcher benches (telemetry feature: {})",
        if cfg!(feature = "telemetry") {
            "on"
        } else {
            "off"
        }
    );
    // Run with the full observability load-out the server carries in
    // production — counting allocator (linked via the telemetry crate)
    // plus the continuous sampling profiler — so the overhead gate in
    // `scripts/bench_overhead.sh` measures the whole stack, not just
    // counters.
    if sketchql::telemetry::is_enabled() {
        sketchql::telemetry::start_continuous_profiler(19);
    }
    let mut h = Harness::from_env();
    bench_matcher(&mut h);
    bench_rules(&mut h);
}
