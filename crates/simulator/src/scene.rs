//! 3D scenes and their 2D recordings.
//!
//! A [`Scene3D`] is a set of agents each following a [`MotionScript`].
//! Recording a scene through a [`CameraRig`] yields a 2D [`Clip`] of
//! bounding box trajectories — the simulator's replacement for a real video
//! processed by an object tracker.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sketchql_trajectory::{Clip, Point3, TrackId, Trajectory};

use crate::agent::Agent;
use crate::camera::CameraRig;
use crate::motion::{AgentPose, MotionScript};

/// One agent and its motion program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// The agent (class + body).
    pub agent: Agent,
    /// Its motion program.
    pub script: MotionScript,
}

/// A 3D scene: agents with motion scripts, plus the recording frame rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene3D {
    /// The scene's objects.
    pub objects: Vec<SceneObject>,
    /// Frames per second used for integration and recording.
    pub fps: f32,
}

impl Scene3D {
    /// Creates a scene at the given frame rate.
    pub fn new(fps: f32) -> Self {
        Scene3D {
            objects: Vec::new(),
            fps,
        }
    }

    /// Builder-style object addition.
    pub fn with_object(mut self, agent: Agent, script: MotionScript) -> Self {
        self.objects.push(SceneObject { agent, script });
        self
    }

    /// Scene duration: the longest object's pose count.
    pub fn duration_frames(&self) -> u32 {
        self.objects
            .iter()
            .map(|o| o.script.integrate(self.fps).len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Per-object pose sequences, padded to the common duration by holding
    /// the final pose (agents stay in the scene after finishing).
    pub fn poses(&self) -> Vec<Vec<AgentPose>> {
        let dur = self.duration_frames() as usize;
        self.objects
            .iter()
            .map(|o| {
                let mut p = o.script.integrate(self.fps);
                if let Some(&last) = p.last() {
                    while p.len() < dur {
                        p.push(last);
                    }
                }
                p
            })
            .collect()
    }

    /// Centroid of all agent positions over time (camera aim point).
    pub fn center(&self) -> Point3 {
        let mut sum = (0.0f32, 0.0f32);
        let mut n = 0usize;
        for poses in self.poses() {
            for p in &poses {
                sum.0 += p.position.x;
                sum.1 += p.position.y;
                n += 1;
            }
        }
        if n == 0 {
            Point3::ZERO
        } else {
            Point3::new(sum.0 / n as f32, sum.1 / n as f32, 0.0)
        }
    }

    /// Records the scene through a camera rig into a 2D clip.
    ///
    /// Each frame advances the rig (applying shake), projects every agent's
    /// cuboid, and appends visible boxes to that agent's trajectory. Frames
    /// where an agent is off-screen or behind the camera are simply absent
    /// from its trajectory (exactly like detector misses).
    pub fn record<R: Rng>(&self, rig: &mut CameraRig, rng: &mut R) -> Clip {
        self.record_offset(rig, rng, 0)
    }

    /// [`record`](Self::record), stamping each box with
    /// `frame_offset + f` instead of `f` — the streaming entry point: a
    /// continuation scene recorded on its own local timeline lands
    /// directly on the global one, ready to splice after an existing
    /// clip's last frame.
    pub fn record_offset<R: Rng>(
        &self,
        rig: &mut CameraRig,
        rng: &mut R,
        frame_offset: u32,
    ) -> Clip {
        let all_poses = self.poses();
        let dur = self.duration_frames();
        let mut trajectories: Vec<Trajectory> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| Trajectory::new(i as TrackId, o.agent.class))
            .collect();
        let (w, h) = (rig.camera.image_width, rig.camera.image_height);
        for f in 0..dur {
            let cam = rig.next_frame(rng);
            for (i, obj) in self.objects.iter().enumerate() {
                let pose = &all_poses[i][f as usize];
                let corners = obj.agent.corners(pose);
                if let Some(bbox) = cam.project_bbox(&corners) {
                    trajectories[i].push(frame_offset + f, bbox);
                }
            }
        }
        Clip::new(w, h, trajectories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::motion::templates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sketchql_trajectory::{ObjectClass, Point2};

    fn demo_scene() -> Scene3D {
        Scene3D::new(30.0)
            .with_object(
                Agent::with_priors(ObjectClass::Car),
                templates::left_turn(
                    Point2::new(-15.0, 0.0),
                    0.0,
                    8.0,
                    std::f32::consts::FRAC_PI_2,
                ),
            )
            .with_object(
                Agent::with_priors(ObjectClass::Person),
                templates::straight_pass(
                    Point2::new(0.0, -10.0),
                    std::f32::consts::FRAC_PI_2,
                    1.4,
                    90,
                ),
            )
    }

    #[test]
    fn duration_is_longest_object() {
        let s = demo_scene();
        assert_eq!(s.duration_frames(), 90);
    }

    #[test]
    fn poses_are_padded_to_duration() {
        let s = demo_scene();
        let poses = s.poses();
        assert_eq!(poses[0].len(), 90);
        assert_eq!(poses[1].len(), 90);
    }

    #[test]
    fn record_produces_visible_trajectories() {
        let s = demo_scene();
        let cam = Camera::look_at(Point3::new(0.0, -40.0, 25.0), s.center());
        let mut rig = CameraRig::stationary(cam);
        let mut rng = StdRng::seed_from_u64(5);
        let clip = s.record(&mut rig, &mut rng);
        assert_eq!(clip.num_objects(), 2);
        // Both objects should be visible for most of the scene from a
        // sensible surveillance viewpoint.
        assert!(
            clip.objects[0].len() > 60,
            "car visible {} frames",
            clip.objects[0].len()
        );
        assert!(
            clip.objects[1].len() > 60,
            "person visible {} frames",
            clip.objects[1].len()
        );
        assert_eq!(clip.objects[0].class, ObjectClass::Car);
        assert_eq!(clip.frame_width, 1280.0);
    }

    #[test]
    fn moving_agent_moves_on_screen() {
        let s = demo_scene();
        let cam = Camera::look_at(Point3::new(0.0, -40.0, 25.0), s.center());
        let mut rig = CameraRig::stationary(cam);
        let mut rng = StdRng::seed_from_u64(6);
        let clip = s.record(&mut rig, &mut rng);
        let car = &clip.objects[0];
        assert!(car.displacement() > 50.0, "car should traverse the screen");
    }

    #[test]
    fn different_cameras_yield_different_projections_of_same_scene() {
        let s = demo_scene();
        let mut rng = StdRng::seed_from_u64(7);
        let mut rig_a =
            CameraRig::stationary(Camera::look_at(Point3::new(0.0, -40.0, 25.0), s.center()));
        let mut rig_b =
            CameraRig::stationary(Camera::look_at(Point3::new(35.0, 10.0, 18.0), s.center()));
        let a = s.record(&mut rig_a, &mut rng);
        let b = s.record(&mut rig_b, &mut rng);
        // Same event, different view: raw screen paths differ.
        let pa = a.objects[0].centers();
        let pb = b.objects[0].centers();
        let diff: f32 = pa.iter().zip(&pb).map(|(x, y)| x.distance(y)).sum::<f32>();
        assert!(diff > 100.0, "views should differ, diff {diff}");
    }

    #[test]
    fn empty_scene_records_empty_clip() {
        let s = Scene3D::new(30.0);
        let mut rig =
            CameraRig::stationary(Camera::look_at(Point3::new(0.0, -10.0, 5.0), Point3::ZERO));
        let mut rng = StdRng::seed_from_u64(8);
        let clip = s.record(&mut rig, &mut rng);
        assert!(clip.is_empty());
        assert_eq!(s.center(), Point3::ZERO);
    }

    #[test]
    fn behind_camera_objects_are_absent() {
        let s = Scene3D::new(30.0).with_object(
            Agent::with_priors(ObjectClass::Car),
            templates::straight_pass(Point2::new(0.0, 0.0), 0.0, 8.0, 30),
        );
        // Camera sits at the object and looks away.
        let cam = Camera::look_at(Point3::new(0.0, 0.0, 1.0), Point3::new(0.0, -100.0, 1.0));
        let mut rig = CameraRig::stationary(cam);
        let mut rng = StdRng::seed_from_u64(9);
        let clip = s.record(&mut rig, &mut rng);
        assert!(
            clip.objects[0].len() < 5,
            "object behind camera should be mostly invisible"
        );
    }
}
