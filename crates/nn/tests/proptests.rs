//! Property-based tests for tensor algebra and autograd invariants.

use proptest::prelude::*;
use sketchql_nn::{cosine_similarity, Graph, ParamStore, Tape, Tensor};

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_is_associative(
        a in arb_tensor(3, 4),
        b in arb_tensor(4, 2),
        c in arb_tensor(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(3, 4),
        b in arb_tensor(4, 2),
        c in arb_tensor(4, 2),
    ) {
        let mut sum = b.clone();
        sum.add_scaled(&c, 1.0);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_scaled(&a.matmul(&c), 1.0);
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(a in arb_tensor(5, 3)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn transpose_respects_matmul(a in arb_tensor(3, 4), b in arb_tensor(4, 2)) {
        // (AB)^T = B^T A^T
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_tensor(4, 6)) {
        let mut tape = Tape::new();
        let x = tape.leaf(a);
        let s = tape.softmax_rows(x);
        let v = tape.value(s);
        for r in 0..v.rows {
            let row = v.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in arb_tensor(2, 5), shift in -5.0f32..5.0) {
        let mut t1 = Tape::new();
        let x1 = t1.leaf(a.clone());
        let s1 = t1.softmax_rows(x1);
        let mut t2 = Tape::new();
        let x2 = t2.leaf(a.map(|v| v + shift));
        let s2 = t2.softmax_rows(x2);
        for (p, q) in t1.value(s1).data.iter().zip(&t2.value(s2).data) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn layer_norm_standardizes_rows(a in arb_tensor(3, 8)) {
        let mut tape = Tape::new();
        let x = tape.leaf(a);
        let gamma = tape.leaf(Tensor::ones(1, 8));
        let beta = tape.leaf(Tensor::zeros(1, 8));
        let ln = tape.layer_norm_rows(x, gamma, beta);
        let v = tape.value(ln);
        for r in 0..v.rows {
            let row = v.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            // Rows with (near-)constant input normalize to ~0 variance.
            prop_assert!(var < 1.1, "var {var}");
        }
    }

    #[test]
    fn l2_normalize_yields_unit_rows(a in arb_tensor(4, 5)) {
        let mut tape = Tape::new();
        let x = tape.leaf(a.clone());
        let n = tape.l2_normalize_rows(x);
        let v = tape.value(n);
        for r in 0..v.rows {
            let norm: f32 = v.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            let input_norm: f32 = a.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if input_norm > 1e-3 {
                prop_assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
            }
        }
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(-5.0f32..5.0, 8),
        b in prop::collection::vec(-5.0f32..5.0, 8),
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
        let r = cosine_similarity(&b, &a);
        prop_assert!((s - r).abs() < 1e-5);
    }

    #[test]
    fn gradient_of_linear_functional_is_weights(a in arb_tensor(1, 6), w in arb_tensor(6, 1)) {
        // loss = a @ w (scalar): d loss / d a = w^T exactly.
        let mut tape = Tape::new();
        let x = tape.leaf(a);
        let wn = tape.leaf(w.clone());
        let y = tape.matmul(x, wn);
        let grads = tape.backward(y);
        let ga = grads.get(x).unwrap();
        for (g, expect) in ga.data.iter().zip(&w.data) {
            prop_assert!((g - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_all_gradient_is_uniform(a in arb_tensor(3, 4)) {
        let mut tape = Tape::new();
        let x = tape.leaf(a);
        let m = tape.mean_all(x);
        let grads = tape.backward(m);
        let g = grads.get(x).unwrap();
        for v in &g.data {
            prop_assert!((v - 1.0 / 12.0).abs() < 1e-6);
        }
    }

    #[test]
    fn concat_then_slice_round_trips(a in arb_tensor(3, 4), b in arb_tensor(3, 2)) {
        let mut tape = Tape::new();
        let xa = tape.leaf(a.clone());
        let xb = tape.leaf(b.clone());
        let cat = tape.concat_cols(&[xa, xb]);
        let sa = tape.slice_cols(cat, 0, 4);
        let sb = tape.slice_cols(cat, 4, 2);
        prop_assert_eq!(tape.value(sa), &a);
        prop_assert_eq!(tape.value(sb), &b);
    }

    #[test]
    fn graph_param_binding_is_stable(v in arb_tensor(2, 2)) {
        let mut store = ParamStore::new();
        store.insert("p", v);
        let mut g = Graph::new(&store);
        let a = g.param("p");
        let b = g.param("p");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn embed_batch_is_bit_identical_to_embed(
        seed in 0u64..1000,
        batch in prop::collection::vec(prop::collection::vec(-3.0f32..3.0, 6 * 8), 1..6),
    ) {
        // The matcher's per-search embedding cache scores candidates from
        // batched embeddings and promises byte-identical search results,
        // so the equivalence must be exact, not approximate.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sketchql_nn::{EncoderConfig, TrajectoryEncoder};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig {
            input_dim: 8,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_hidden: 16,
            embed_dim: 4,
            steps: 6,
            ..Default::default()
        };
        let enc = TrajectoryEncoder::new(&mut store, &mut rng, "enc", cfg);
        let feats: Vec<Tensor> = batch
            .into_iter()
            .map(|data| Tensor::from_vec(6, 8, data))
            .collect();
        let refs: Vec<&Tensor> = feats.iter().collect();
        let batched = enc.embed_batch(&store, &refs);
        prop_assert_eq!(batched.len(), feats.len());
        for (f, b) in feats.iter().zip(&batched) {
            let solo = enc.embed(&store, f);
            prop_assert_eq!(&solo, b);
        }
    }
}
