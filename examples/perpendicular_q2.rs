//! Q2 — "a car and a person moving perpendicularly to each other" — the
//! multi-object demo of §3.2, including the trajectory-panel
//! synchronization step of Figure 4.
//!
//! The person is dragged first, then the car, so the raw sketch plays them
//! *sequentially*. We run the query before and after aligning the car's
//! panel box with the person's to show that the Trajectory Panel's timing
//! edit is what makes the simultaneous-crossing query match.
//!
//! ```text
//! cargo run --release --example perpendicular_q2
//! ```

use sketchql::prelude::*;
use sketchql_datasets::{evaluate_retrieval, EventKind, PredictedMoment, SceneFamily};

fn main() {
    let model = sketchql_suite::demo_model();
    let mut sq = SketchQL::new(model);
    let video = sketchql_suite::demo_video(SceneFamily::UrbanIntersection, 31);
    sq.upload_dataset("traffic", &video);
    let truth = video.events_of(EventKind::PerpendicularCrossing);
    println!(
        "Dataset: {} frames; {} ground-truth perpendicular crossings at {:?}\n",
        video.frames,
        truth.len(),
        truth.iter().map(|t| (t.start, t.end)).collect::<Vec<_>>()
    );

    // Step 2 (multi-object): create a Car and a Person.
    let mut sketch = sq.new_sketch();
    let person = sketch
        .create_object(ObjectClass::Person, Point2::new(200.0, 300.0))
        .unwrap();
    let car = sketch
        .create_object(ObjectClass::Car, Point2::new(500.0, 80.0))
        .unwrap();
    println!("Step 2: created Person #{person} and Car #{car}");

    // Step 3 (multi-object): drag the person horizontally, then the car
    // vertically. Drawn sequentially, so their panel boxes do not overlap.
    sketch.set_mode(MouseMode::Drag);
    let p_seg = sketch
        .drag_object_along(
            person,
            &[
                Point2::new(320.0, 300.0),
                Point2::new(440.0, 300.0),
                Point2::new(560.0, 300.0),
                Point2::new(680.0, 300.0),
                Point2::new(800.0, 300.0),
            ],
        )
        .unwrap();
    let c_seg = sketch
        .drag_object_along(
            car,
            &[
                Point2::new(500.0, 170.0),
                Point2::new(500.0, 260.0),
                Point2::new(500.0, 350.0),
                Point2::new(500.0, 440.0),
                Point2::new(500.0, 520.0),
            ],
        )
        .unwrap();
    // A programmatic drag has few samples; a real mouse drag records one
    // sample per frame. Stretch both boxes to a realistic ~2.5s duration
    // (the panel's resize edit).
    sketch.stretch_segment(p_seg, 80).unwrap();
    sketch.stretch_segment(c_seg, 80).unwrap();
    // Mimic sequential drawing on a shared timeline: the car's box starts
    // after the person's box ends.
    let after = sketch.segment(p_seg).unwrap().end_tick();
    sketch.shift_segment(c_seg, after).unwrap();
    println!(
        "Step 3: person box ticks [{}..{}), car box ticks [{}..{}) (sequential)\n",
        sketch.segment(p_seg).unwrap().start_tick,
        sketch.segment(p_seg).unwrap().end_tick(),
        sketch.segment(c_seg).unwrap().start_tick,
        sketch.segment(c_seg).unwrap().end_tick()
    );

    let eval = |sq: &SketchQL, sketch: &Sketcher, label: &str| {
        let results = sq.run_sketch("traffic", sketch).unwrap();
        let preds: Vec<PredictedMoment> = results
            .iter()
            .map(|m| PredictedMoment {
                start: m.start,
                end: m.end,
                score: m.score,
            })
            .collect();
        let report = evaluate_retrieval(&preds, &truth);
        println!(
            "  {label:<22} P@{}: {:.2}  recall {:.2}   top: {}",
            report.num_truth,
            report.precision_at_k,
            report.recall,
            results
                .iter()
                .take(3)
                .map(|m| format!(
                    "[{}..{} s={:.2} tracks={:?}]",
                    m.start, m.end, m.score, m.track_ids
                ))
                .collect::<Vec<_>>()
                .join(" ")
        );
    };

    println!("Step 5/6 (before synchronization): objects move one after another");
    eval(&sq, &sketch, "before alignment");

    // Step 4 (multi-object): drag the car's box left to align with the
    // person's box — Figure 4.
    sketch.align_segments(c_seg, p_seg).unwrap();
    println!(
        "\nStep 4: aligned car box with person box (both start at tick {})",
        sketch.segment(c_seg).unwrap().start_tick
    );

    println!("\nStep 5/6 (after synchronization): objects move simultaneously");
    eval(&sq, &sketch, "after alignment");

    println!("\n(The synchronized query is the one that matches simultaneous");
    println!(" perpendicular crossings — the Trajectory Panel edit matters.)");
}
