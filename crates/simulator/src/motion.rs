//! Motion programs: how simulated agents move on the 3D ground plane.
//!
//! A [`MotionScript`] is a sequence of [`MotionPrimitive`]s (go straight,
//! turn, stop, ...) integrated frame-by-frame into a sequence of
//! [`AgentPose`]s. The same abstraction serves two roles:
//!
//! * the **simulator** composes random scripts to synthesize diverse
//!   training events, and
//! * the **scene generator** uses hand-written scripts for ground-truth
//!   events such as "left turn" (the demo's Q1).

use serde::{Deserialize, Serialize};
use sketchql_trajectory::{wrap_angle, Point2};

/// One building block of a motion script.
///
/// All durations are in frames; angles are radians (positive = turning left
/// in a right-handed ground frame where `x` is east and `y` is north);
/// speeds are multipliers on the agent's base speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionPrimitive {
    /// Constant-velocity straight motion.
    Straight {
        /// Duration in frames.
        frames: u32,
        /// Speed multiplier relative to the agent's base speed.
        speed: f32,
    },
    /// Constant-rate turn through `angle` while moving.
    Turn {
        /// Duration in frames.
        frames: u32,
        /// Total signed turn angle (radians; positive = left).
        angle: f32,
        /// Speed multiplier while turning.
        speed: f32,
    },
    /// Standing still.
    Stop {
        /// Duration in frames.
        frames: u32,
    },
    /// Linear speed ramp between two multipliers, straight heading.
    Accelerate {
        /// Duration in frames.
        frames: u32,
        /// Starting speed multiplier.
        from: f32,
        /// Ending speed multiplier.
        to: f32,
    },
    /// An S-curve: turn through `angle` then back through `-angle`.
    SCurve {
        /// Total duration in frames (split evenly between the two bends).
        frames: u32,
        /// Magnitude of each bend (radians).
        angle: f32,
        /// Speed multiplier.
        speed: f32,
    },
}

impl MotionPrimitive {
    /// Duration in frames.
    pub fn frames(&self) -> u32 {
        match *self {
            MotionPrimitive::Straight { frames, .. }
            | MotionPrimitive::Turn { frames, .. }
            | MotionPrimitive::Stop { frames }
            | MotionPrimitive::Accelerate { frames, .. }
            | MotionPrimitive::SCurve { frames, .. } => frames,
        }
    }
}

/// The pose of an agent at one frame: ground position and heading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentPose {
    /// Ground-plane position (meters).
    pub position: Point2,
    /// Heading angle (radians, 0 = +x).
    pub heading: f32,
    /// Instantaneous speed (meters per frame).
    pub speed: f32,
}

/// A full motion program: initial pose plus a primitive sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionScript {
    /// Starting ground position (meters).
    pub start: Point2,
    /// Starting heading (radians).
    pub heading: f32,
    /// Base speed in meters/second; primitives scale this.
    pub base_speed_mps: f32,
    /// The primitive sequence.
    pub primitives: Vec<MotionPrimitive>,
    /// First frame at which the agent starts moving (poses before this hold
    /// the initial pose). Lets multi-agent scenes stagger entrances.
    pub start_frame: u32,
}

impl MotionScript {
    /// A script starting at `start` with heading `heading`.
    pub fn new(start: Point2, heading: f32, base_speed_mps: f32) -> Self {
        MotionScript {
            start,
            heading,
            base_speed_mps,
            primitives: Vec::new(),
            start_frame: 0,
        }
    }

    /// Builder-style push of a primitive.
    pub fn then(mut self, p: MotionPrimitive) -> Self {
        self.primitives.push(p);
        self
    }

    /// Delays the script's motion to begin at `frame`.
    pub fn starting_at(mut self, frame: u32) -> Self {
        self.start_frame = frame;
        self
    }

    /// Total frames of motion (excluding the initial delay).
    pub fn motion_frames(&self) -> u32 {
        self.primitives.iter().map(MotionPrimitive::frames).sum()
    }

    /// Total frames including the initial delay.
    pub fn total_frames(&self) -> u32 {
        self.start_frame + self.motion_frames()
    }

    /// Integrates the script into one pose per frame at the given video
    /// frame rate. The returned vector has `total_frames()` entries (or 1 if
    /// the script is empty, holding the initial pose).
    pub fn integrate(&self, fps: f32) -> Vec<AgentPose> {
        let speed_per_frame = self.base_speed_mps / fps.max(1e-6);
        let mut poses = Vec::with_capacity(self.total_frames() as usize + 1);
        let mut pos = self.start;
        let mut heading = self.heading;

        for _ in 0..self.start_frame {
            poses.push(AgentPose {
                position: pos,
                heading,
                speed: 0.0,
            });
        }

        for prim in &self.primitives {
            let n = prim.frames();
            for i in 0..n {
                let (dtheta, speed_scale) = match *prim {
                    MotionPrimitive::Straight { speed, .. } => (0.0, speed),
                    MotionPrimitive::Turn {
                        frames,
                        angle,
                        speed,
                    } => (angle / frames as f32, speed),
                    MotionPrimitive::Stop { .. } => (0.0, 0.0),
                    MotionPrimitive::Accelerate { frames, from, to } => {
                        let t = i as f32 / (frames.max(1) as f32);
                        (0.0, from + (to - from) * t)
                    }
                    MotionPrimitive::SCurve {
                        frames,
                        angle,
                        speed,
                    } => {
                        let half = frames / 2;
                        let rate = angle / half.max(1) as f32;
                        if i < half {
                            (rate, speed)
                        } else {
                            (-rate, speed)
                        }
                    }
                };
                heading = wrap_angle(heading + dtheta);
                let v = speed_per_frame * speed_scale;
                let dir = Point2::new(heading.cos(), heading.sin());
                pos = pos + dir * v;
                poses.push(AgentPose {
                    position: pos,
                    heading,
                    speed: v,
                });
            }
        }

        if poses.is_empty() {
            poses.push(AgentPose {
                position: pos,
                heading,
                speed: 0.0,
            });
        }
        poses
    }
}

/// Canonical event scripts used by both the simulator's template library and
/// the scene generator's ground-truth events.
pub mod templates {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    /// A left turn: approach straight, turn left through `angle`, depart
    /// straight. `angle` defaults to 90 degrees; the paper's Figure 1 shows
    /// acute and obtuse variants.
    pub fn left_turn(start: Point2, heading: f32, speed: f32, angle: f32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight {
                frames: 30,
                speed: 1.0,
            })
            .then(MotionPrimitive::Turn {
                frames: 30,
                angle,
                speed: 0.8,
            })
            .then(MotionPrimitive::Straight {
                frames: 30,
                speed: 1.0,
            })
    }

    /// A right turn (mirror of [`left_turn`]).
    pub fn right_turn(start: Point2, heading: f32, speed: f32, angle: f32) -> MotionScript {
        left_turn(start, heading, speed, -angle)
    }

    /// A U-turn: 180 degrees over a longer window.
    pub fn u_turn(start: Point2, heading: f32, speed: f32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight {
                frames: 25,
                speed: 1.0,
            })
            .then(MotionPrimitive::Turn {
                frames: 45,
                angle: PI,
                speed: 0.6,
            })
            .then(MotionPrimitive::Straight {
                frames: 25,
                speed: 1.0,
            })
    }

    /// Straight pass through the scene.
    pub fn straight_pass(start: Point2, heading: f32, speed: f32, frames: u32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight { frames, speed: 1.0 })
    }

    /// Stop-and-go: drive, stop, drive (e.g. at a stop sign).
    pub fn stop_and_go(start: Point2, heading: f32, speed: f32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight {
                frames: 30,
                speed: 1.0,
            })
            .then(MotionPrimitive::Stop { frames: 25 })
            .then(MotionPrimitive::Accelerate {
                frames: 20,
                from: 0.2,
                to: 1.0,
            })
            .then(MotionPrimitive::Straight {
                frames: 15,
                speed: 1.0,
            })
    }

    /// A lane change (gentle S-curve).
    pub fn lane_change(start: Point2, heading: f32, speed: f32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight {
                frames: 25,
                speed: 1.0,
            })
            .then(MotionPrimitive::SCurve {
                frames: 30,
                angle: 0.5,
                speed: 1.0,
            })
            .then(MotionPrimitive::Straight {
                frames: 25,
                speed: 1.0,
            })
    }

    /// Loitering: short random-looking wander built from small turns.
    pub fn loiter(start: Point2, heading: f32, speed: f32) -> MotionScript {
        MotionScript::new(start, heading, speed)
            .then(MotionPrimitive::Straight {
                frames: 15,
                speed: 0.3,
            })
            .then(MotionPrimitive::Turn {
                frames: 15,
                angle: FRAC_PI_2,
                speed: 0.3,
            })
            .then(MotionPrimitive::Stop { frames: 15 })
            .then(MotionPrimitive::Turn {
                frames: 15,
                angle: -FRAC_PI_2,
                speed: 0.3,
            })
            .then(MotionPrimitive::Straight {
                frames: 15,
                speed: 0.3,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    const FPS: f32 = 30.0;

    #[test]
    fn straight_motion_travels_expected_distance() {
        let s = MotionScript::new(Point2::ZERO, 0.0, 10.0).then(MotionPrimitive::Straight {
            frames: 30,
            speed: 1.0,
        });
        let poses = s.integrate(FPS);
        assert_eq!(poses.len(), 30);
        // 10 m/s for 1 second = 10 m along +x.
        let last = poses.last().unwrap();
        assert!((last.position.x - 10.0).abs() < 1e-4);
        assert!(last.position.y.abs() < 1e-6);
    }

    #[test]
    fn turn_changes_heading_by_angle() {
        let s = MotionScript::new(Point2::ZERO, 0.0, 5.0).then(MotionPrimitive::Turn {
            frames: 20,
            angle: FRAC_PI_2,
            speed: 1.0,
        });
        let poses = s.integrate(FPS);
        let last = poses.last().unwrap();
        assert!((last.heading - FRAC_PI_2).abs() < 1e-4);
        // Left turn from +x heading moves up-left: both coords positive.
        assert!(last.position.x > 0.0);
        assert!(last.position.y > 0.0);
    }

    #[test]
    fn left_turn_template_turns_left() {
        let s = templates::left_turn(Point2::ZERO, 0.0, 8.0, FRAC_PI_2);
        let poses = s.integrate(FPS);
        let last = poses.last().unwrap();
        assert!((wrap_angle(last.heading - FRAC_PI_2)).abs() < 1e-3);
        // Net displacement is up and to the right.
        assert!(last.position.x > 0.0 && last.position.y > 0.0);
    }

    #[test]
    fn right_turn_is_mirror() {
        let l = templates::left_turn(Point2::ZERO, 0.0, 8.0, FRAC_PI_2).integrate(FPS);
        let r = templates::right_turn(Point2::ZERO, 0.0, 8.0, FRAC_PI_2).integrate(FPS);
        for (a, b) in l.iter().zip(&r) {
            assert!((a.position.x - b.position.x).abs() < 1e-4);
            assert!((a.position.y + b.position.y).abs() < 1e-4);
        }
    }

    #[test]
    fn u_turn_reverses_heading() {
        let s = templates::u_turn(Point2::ZERO, 0.3, 8.0);
        let last = *s.integrate(FPS).last().unwrap();
        assert!((wrap_angle(last.heading - (0.3 + PI))).abs() < 1e-3);
    }

    #[test]
    fn stop_primitive_freezes_position() {
        let s = MotionScript::new(Point2::new(1.0, 2.0), 0.5, 10.0)
            .then(MotionPrimitive::Stop { frames: 10 });
        let poses = s.integrate(FPS);
        for p in &poses {
            assert_eq!(p.position, Point2::new(1.0, 2.0));
            assert_eq!(p.speed, 0.0);
        }
    }

    #[test]
    fn accelerate_ramps_speed() {
        let s = MotionScript::new(Point2::ZERO, 0.0, 30.0).then(MotionPrimitive::Accelerate {
            frames: 10,
            from: 0.0,
            to: 1.0,
        });
        let poses = s.integrate(FPS);
        assert!(poses[0].speed < poses[9].speed);
        assert!(poses.windows(2).all(|w| w[1].speed >= w[0].speed));
    }

    #[test]
    fn s_curve_returns_to_original_heading() {
        let s = MotionScript::new(Point2::ZERO, 0.2, 10.0).then(MotionPrimitive::SCurve {
            frames: 30,
            angle: 0.6,
            speed: 1.0,
        });
        let last = *s.integrate(FPS).last().unwrap();
        assert!((wrap_angle(last.heading - 0.2)).abs() < 1e-3);
    }

    #[test]
    fn start_frame_delays_motion() {
        let s = MotionScript::new(Point2::ZERO, 0.0, 10.0)
            .then(MotionPrimitive::Straight {
                frames: 5,
                speed: 1.0,
            })
            .starting_at(7);
        let poses = s.integrate(FPS);
        assert_eq!(poses.len(), 12);
        for p in &poses[..7] {
            assert_eq!(p.position, Point2::ZERO);
        }
        assert!(poses[11].position.x > 0.0);
    }

    #[test]
    fn empty_script_yields_single_pose() {
        let s = MotionScript::new(Point2::new(3.0, 4.0), 1.0, 5.0);
        let poses = s.integrate(FPS);
        assert_eq!(poses.len(), 1);
        assert_eq!(poses[0].position, Point2::new(3.0, 4.0));
    }

    #[test]
    fn total_frames_accounting() {
        let s = templates::stop_and_go(Point2::ZERO, 0.0, 10.0).starting_at(5);
        assert_eq!(s.motion_frames(), 30 + 25 + 20 + 15);
        assert_eq!(s.total_frames(), 95);
        assert_eq!(s.integrate(FPS).len(), 95);
    }
}
