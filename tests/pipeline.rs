//! Cross-crate integration: simulator → detector → tracker → index →
//! matcher, without the learned model (classical similarity), verifying the
//! full preprocessing and search machinery end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::{ClassicalSimilarity, Matcher, VideoIndex};
use sketchql_datasets::{
    evaluate_retrieval, generate_video, query_clip, EventKind, PredictedMoment, SceneFamily,
    VideoConfig,
};
use sketchql_tracker::{evaluate_tracking, DetectorConfig, TrackerConfig};
use sketchql_trajectory::DistanceKind;

fn video(seed: u64) -> sketchql_datasets::SyntheticVideo {
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 3,
        fps: 30.0,
    };
    generate_video(cfg, seed, &mut StdRng::seed_from_u64(seed))
}

#[test]
fn tracker_reconstructs_synthetic_video() {
    let v = video(11);
    let idx = VideoIndex::build(&v, DetectorConfig::default(), TrackerConfig::default(), 1);
    let report = evaluate_tracking(&v.truth, &idx.tracks);
    assert!(report.coverage > 0.5, "coverage {report:?}");
    assert!(report.precision > 0.6, "precision {report:?}");
    // Fragmentation should be modest: fewer than 3 extra tracks per object.
    assert!(
        report.fragmentation < v.truth.num_objects() * 3,
        "{report:?}"
    );
}

#[test]
fn classical_matcher_retrieves_left_turns_from_tracked_video() {
    let v = video(12);
    // Oracle tracks isolate the matcher from tracking noise in this test.
    let idx = VideoIndex::from_truth(&v);
    let matcher = Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw));
    let query = query_clip(EventKind::LeftTurn);
    let results = matcher.search(&idx, &query).unwrap();
    assert!(!results.is_empty());
    let truth = v.events_of(EventKind::LeftTurn);
    let preds: Vec<PredictedMoment> = results
        .iter()
        .map(|m| PredictedMoment {
            start: m.start,
            end: m.end,
            score: m.score,
        })
        .collect();
    let r = evaluate_retrieval(&preds, &truth);
    assert!(
        r.recall > 0.0,
        "at least one left turn should be recovered: {r:?}"
    );
}

#[test]
fn retrieval_survives_realistic_tracking_noise() {
    let v = video(13);
    let idx = VideoIndex::build(&v, DetectorConfig::default(), TrackerConfig::default(), 3);
    let matcher = Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw));
    let query = query_clip(EventKind::LeftTurn);
    let results = matcher.search(&idx, &query).unwrap();
    assert!(
        !results.is_empty(),
        "search over tracked (noisy) index must return moments"
    );
    for m in &results {
        assert!(m.end <= v.frames);
        assert!((0.0..=1.0).contains(&m.score));
    }
}

#[test]
fn multi_object_query_requires_both_classes() {
    let v = video(14);
    let idx = VideoIndex::from_truth(&v);
    let matcher = Matcher::new(ClassicalSimilarity::new(DistanceKind::Euclidean));
    let query = query_clip(EventKind::PerpendicularCrossing);
    let results = matcher.search(&idx, &query).unwrap();
    for m in &results {
        assert_eq!(m.track_ids.len(), 2);
        let classes: Vec<_> = m
            .track_ids
            .iter()
            .map(|id| idx.tracks.iter().find(|t| t.id == *id).unwrap().class)
            .collect();
        assert_eq!(
            classes,
            vec![
                sketchql_trajectory::ObjectClass::Car,
                sketchql_trajectory::ObjectClass::Person
            ]
        );
    }
}

#[test]
fn all_canonical_queries_execute_on_all_families() {
    for family in SceneFamily::ALL {
        let cfg = VideoConfig {
            family: *family,
            events_per_kind: 1,
            distractors: 2,
            fps: 30.0,
        };
        let v = generate_video(cfg, 21, &mut StdRng::seed_from_u64(21));
        let idx = VideoIndex::from_truth(&v);
        let matcher = Matcher::new(ClassicalSimilarity::new(DistanceKind::Dtw));
        for &kind in EventKind::ALL {
            let query = query_clip(kind);
            // Must not panic and must return valid moments.
            let results = matcher.search(&idx, &query).unwrap();
            for m in &results {
                assert!(m.start <= m.end);
            }
        }
    }
}
