//! The cached + batched matcher path is an optimization, not a behavior
//! change: for any thread count it must return byte-identical results to
//! the direct (uncached, sequential) scan. Possible because every encoder
//! op is row/block-local, so batched forwards reproduce `embed()` exactly
//! in f32 — see DESIGN.md §7.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchql::telemetry::{self, Recorder};
use sketchql::training::{train, TrainingConfig};
use sketchql::{Matcher, MatcherConfig, VideoIndex};
use sketchql_datasets::{generate_video, query_clip, EventKind, SceneFamily, VideoConfig};
use sketchql_trajectory::{BBox, Clip, ObjectClass, TrajPoint, Trajectory};
use std::sync::Mutex;

/// Counters are process-global; tests that bracket them with a
/// [`Recorder`] must not interleave with other counter traffic.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn tiny_model() -> sketchql::TrainedModel {
    let mut cfg = TrainingConfig::tiny();
    cfg.steps = 2;
    train(cfg)
}

#[test]
fn cached_search_matches_uncached_exactly() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = tiny_model();
    let cfg = VideoConfig {
        family: SceneFamily::UrbanIntersection,
        events_per_kind: 1,
        distractors: 3,
        fps: 30.0,
    };
    let v = generate_video(cfg, 31, &mut StdRng::seed_from_u64(31));
    let idx = VideoIndex::from_truth(&v);

    // Single-object and multi-object (combinatorial) queries.
    for &kind in &[EventKind::LeftTurn, EventKind::PerpendicularCrossing] {
        let query = query_clip(kind);
        let baseline = Matcher::with_config(
            model.similarity(),
            MatcherConfig {
                embed_cache: false,
                threads: 1,
                ..Default::default()
            },
        )
        .search(&idx, &query)
        .unwrap();
        assert!(!baseline.is_empty(), "{kind:?} must retrieve moments");

        for threads in [1usize, 4] {
            let cached = Matcher::with_config(
                model.similarity(),
                MatcherConfig {
                    embed_cache: true,
                    threads,
                    ..Default::default()
                },
            )
            .search(&idx, &query)
            .unwrap();
            // `RetrievedMoment` compares `score: f32` with `==`, so this
            // asserts bit-identical scores, not approximate agreement.
            assert_eq!(cached, baseline, "{kind:?} with {threads} threads");
        }
    }
}

/// When two window scales clamp to grids that share a tail-truncated
/// segment, the second lookup must hit the cache instead of re-embedding.
#[test]
fn overlapping_clamped_windows_hit_the_cache() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let model = tiny_model();
    // Scales 1.0 and 1.125 of a 16-frame query give 16- and 18-frame
    // windows; both grids end with the truncated segment (84, 99) over a
    // 100-frame video, so exactly one candidate repeats.
    let matcher = Matcher::with_config(
        model.similarity(),
        MatcherConfig {
            window_scales: vec![1.0, 1.125],
            ..Default::default()
        },
    );
    let pts = (0..100)
        .map(|f| TrajPoint::new(f, BBox::new(50.0 + f as f32 * 8.0, 360.0, 60.0, 35.0)))
        .collect();
    let clip = Clip::new(
        1280.0,
        720.0,
        vec![Trajectory::from_points(1, ObjectClass::Car, pts)],
    );
    let idx = VideoIndex::from_clip("cache_hits", &clip, 100, 30.0);
    let q_pts = (0..16)
        .map(|i| TrajPoint::new(i, BBox::new(100.0 + i as f32 * 10.0, 400.0, 80.0, 45.0)))
        .collect();
    let query = Clip::new(
        1000.0,
        600.0,
        vec![Trajectory::from_points(0, ObjectClass::Car, q_pts)],
    );

    let recorder = Recorder::begin();
    let results = matcher.search(&idx, &query).unwrap();
    let report = recorder.finish("embed_cache/hits");
    assert!(!results.is_empty());

    if !telemetry::is_enabled() {
        assert_eq!(report.embed_cache_hits, 0);
        assert_eq!(report.embed_cache_hit_rate(), None);
        return;
    }

    // 22 windows on the 16-grid + 22 on the 18-grid, sharing one segment.
    assert_eq!(report.embed_cache_hits, 1);
    assert_eq!(report.embed_cache_misses, 43);
    let rate = report.embed_cache_hit_rate().unwrap();
    assert!(rate > 0.0 && rate < 1.0, "hit rate {rate}");
    // The repeated segment was embedded once: query + unique candidates.
    assert_eq!(report.embeddings_computed, 43 + 1);
}
