//! Minimal micro-benchmark harness (criterion stand-in).
//!
//! The workspace builds with no network access, so benches run on this
//! small in-tree harness instead of criterion. It keeps the parts that
//! matter for comparing builds: per-iteration timing from batched
//! monotonic-clock samples, warmup, and machine-readable output.
//!
//! Each measurement prints one line:
//!
//! ```text
//! BENCH matcher_search/learned/270 median_ns=123456 min_ns=... max_ns=... samples=20
//! ```
//!
//! `scripts/bench_overhead.sh` diffs `median_ns` between two builds (for
//! the telemetry-overhead acceptance check). Set `SKETCHQL_BENCH_QUICK=1`
//! for a fast smoke run.

use std::time::{Duration, Instant};

/// Runs one benchmark body: `iter` is called with the closure to time.
pub struct Bencher {
    samples: usize,
    batch_target: Duration,
    results: Option<Stats>,
}

/// Summary of one benchmark's samples, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

impl Bencher {
    /// Times `f`, batching calls so each sample spans a measurable
    /// interval. The return value is passed through [`std::hint::black_box`]
    /// so the work isn't optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: estimate one iteration's cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let est_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch =
            ((self.batch_target.as_secs_f64() / est_iter.max(1e-9)) as u64).clamp(1, 100_000);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        self.results = Some(Stats {
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
            samples: per_iter_ns.len(),
        });
    }
}

/// Entry point owning harness-wide settings; create with [`Harness::from_env`].
pub struct Harness {
    quick: bool,
    filter: Option<String>,
}

impl Harness {
    /// Reads settings from the environment (`SKETCHQL_BENCH_QUICK=1`
    /// shrinks samples and batch targets for smoke runs) and the command
    /// line: the first non-flag argument — what
    /// `cargo bench -p ... --bench <name> -- <substring>` passes — keeps
    /// only benches whose id contains the substring, like criterion's
    /// filter. `SKETCHQL_BENCH_FILTER` works too and wins if both are set.
    pub fn from_env() -> Self {
        let filter = std::env::var("SKETCHQL_BENCH_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        Harness {
            quick: std::env::var_os("SKETCHQL_BENCH_QUICK").is_some(),
            filter,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f.as_str()))
    }

    fn default_samples(&self) -> usize {
        if self.quick {
            3
        } else {
            20
        }
    }

    fn batch_target(&self) -> Duration {
        if self.quick {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(5)
        }
    }

    /// Opens a named group of related measurements.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        if !self.selected(id) {
            return;
        }
        let samples = self.default_samples();
        let batch_target = self.batch_target();
        run_one(id, samples, batch_target, f);
    }
}

/// A named group of measurements sharing a sample count.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks one case; `id` distinguishes it within the group.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.harness.selected(&full_id) {
            return;
        }
        let samples = if self.harness.quick {
            self.harness.default_samples()
        } else {
            self.sample_size
                .unwrap_or_else(|| self.harness.default_samples())
        };
        let batch_target = self.harness.batch_target();
        run_one(&full_id, samples, batch_target, f);
    }

    /// No-op, kept for call-site symmetry with criterion's API.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, batch_target: Duration, mut f: F) {
    let mut b = Bencher {
        samples,
        batch_target,
        results: None,
    };
    f(&mut b);
    match b.results {
        Some(s) => {
            println!(
                "BENCH {id} median_ns={:.0} min_ns={:.0} max_ns={:.0} samples={}",
                s.median_ns, s.min_ns, s.max_ns, s.samples
            );
        }
        None => println!("BENCH {id} SKIPPED (body never called iter)"),
    }
}
