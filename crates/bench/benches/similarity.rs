//! T1/T5 — cost of scoring one candidate window under each similarity
//! function (the inner loop of the Matcher).

use sketchql::{ClassicalSimilarity, Similarity};
use sketchql_bench::harness::Harness;
use sketchql_bench::{bench_clip, bench_model};
use sketchql_datasets::{query_clip, EventKind};
use sketchql_trajectory::DistanceKind;
use std::hint::black_box;

fn bench_similarity(h: &mut Harness) {
    let model = bench_model();
    let learned = model.similarity();
    let query = query_clip(EventKind::LeftTurn);
    let candidate = bench_clip(1);

    let mut group = h.group("similarity_score");
    let prepared = learned.prepare(&query).unwrap();
    group.bench("sketchql_learned", |b| {
        b.iter(|| black_box(learned.score(&prepared, black_box(&candidate))))
    });
    for &kind in DistanceKind::ALL {
        let sim = ClassicalSimilarity::new(kind);
        let prepared = sim.prepare(&query).unwrap();
        group.bench(format!("classical/{}", kind.name()), |b| {
            b.iter(|| black_box(sim.score(&prepared, black_box(&candidate))))
        });
    }
    group.finish();

    // Query preparation (one-time per query) cost.
    let mut group = h.group("similarity_prepare");
    group.bench("sketchql_learned", |b| {
        b.iter(|| black_box(learned.prepare(black_box(&query))))
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_similarity(&mut h);
}
